#include "sim/dst_transport.hpp"

#include <algorithm>
#include <stdexcept>

namespace vira::sim {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_step(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}
}  // namespace

VirtualTransport::VirtualTransport(std::shared_ptr<VirtualClock> clock, Config config)
    : clock_(std::move(clock)), config_(std::move(config)), rng_(config_.faults.seed) {
  if (!clock_) {
    throw std::invalid_argument("VirtualTransport: clock required");
  }
  if (config_.size < 1) {
    throw std::invalid_argument("VirtualTransport: size must be >= 1");
  }
  mailboxes_.resize(static_cast<std::size_t>(config_.size));
  waiters_.resize(static_cast<std::size_t>(config_.size));
  auto lock = clock_->acquire();
  for (const auto& [when, rank] : config_.kills) {
    const int victim = rank;
    const auto due = std::chrono::duration_cast<std::chrono::nanoseconds>(when).count();
    clock_->add_timer_locked(due, [this, victim] {
      // Under the machine lock (timers fire inside schedule_next_locked).
      if (dead_.insert(victim).second) {
        util::ByteBuffer none;
        record_locked('K', victim, -1, 0, none);
      }
    });
  }
}

void VirtualTransport::record_locked(char kind, int a, int b, int tag,
                                     const util::ByteBuffer& payload) {
  ++events_;
  hash_ = fnv_step(hash_, static_cast<std::uint64_t>(kind));
  hash_ = fnv_step(hash_, static_cast<std::uint64_t>(clock_->now_ns()));
  hash_ = fnv_step(hash_, static_cast<std::uint64_t>(static_cast<std::int64_t>(a)));
  hash_ = fnv_step(hash_, static_cast<std::uint64_t>(static_cast<std::int64_t>(b)));
  hash_ = fnv_step(hash_, static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
  hash_ = fnv_step(hash_, payload.size());
  const std::byte* bytes = payload.data();
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    acc = (acc << 8) | std::to_integer<std::uint64_t>(bytes[i]);
    if ((i & 7u) == 7u) {
      hash_ = fnv_step(hash_, acc);
      acc = 0;
    }
  }
  if ((payload.size() & 7u) != 0) {
    hash_ = fnv_step(hash_, acc);
  }
}

void VirtualTransport::deliver_locked(int dest, comm::Message msg) {
  if (down_ || dead_.count(dest) > 0 || dead_.count(msg.source) > 0) {
    // A kill or shutdown landed while the message was in (virtual) flight.
    ++stats_.suppressed_dead;
    return;
  }
  record_locked('d', msg.source, dest, msg.tag, msg.payload);
  mailboxes_[static_cast<std::size_t>(dest)].push_back(std::move(msg));
  auto& queue = waiters_[static_cast<std::size_t>(dest)];
  if (!queue.empty()) {
    VirtualClock::Participant* waiter = queue.front();
    queue.pop_front();
    clock_->wake_locked(waiter);
  }
}

void VirtualTransport::send(int dest, comm::Message msg) {
  if (dest < 0 || dest >= config_.size) {
    throw std::out_of_range("VirtualTransport: bad destination");
  }
  auto lock = clock_->acquire();
  if (down_) {
    return;  // sends to a shut-down transport are dropped (Transport contract)
  }
  // Mirror FaultInjectingTransport::send decision-for-decision so the same
  // seed consumes the same random stream.
  if (dead_.count(dest) > 0 || dead_.count(msg.source) > 0) {
    ++stats_.suppressed_dead;
    return;
  }
  bool duplicate = false;
  std::chrono::milliseconds delay{0};
  if (faults_possible()) {
    if (config_.faults.drop_rate > 0.0 && rng_.next_double() < config_.faults.drop_rate) {
      ++stats_.dropped;
      record_locked('D', msg.source, dest, msg.tag, msg.payload);
      return;
    }
    if (config_.faults.duplicate_rate > 0.0 &&
        rng_.next_double() < config_.faults.duplicate_rate) {
      ++stats_.duplicated;
      duplicate = true;
    }
    if (config_.faults.delay_rate > 0.0 && rng_.next_double() < config_.faults.delay_rate) {
      ++stats_.delayed;
      const auto span = std::max<std::int64_t>(1, config_.faults.max_delay.count());
      delay = std::chrono::milliseconds(
          1 + static_cast<std::int64_t>(rng_.next_below(static_cast<std::uint64_t>(span))));
    }
  }
  ++stats_.forwarded;

  const int copies = duplicate ? 2 : 1;
  for (int copy = 0; copy < copies; ++copy) {
    comm::Message instance = (copy + 1 == copies) ? std::move(msg) : msg;
    if (delay.count() > 0) {
      const auto due =
          clock_->now_ns() + std::chrono::duration_cast<std::chrono::nanoseconds>(delay).count();
      // Capture by shared_ptr: std::function requires copyable callables.
      auto held = std::make_shared<comm::Message>(std::move(instance));
      clock_->add_timer_locked(due, [this, dest, held]() mutable {
        deliver_locked(dest, std::move(*held));
      });
    } else {
      deliver_locked(dest, std::move(instance));
    }
  }
}

std::optional<comm::Message> VirtualTransport::recv(int self,
                                                    std::chrono::milliseconds timeout) {
  if (self < 0 || self >= config_.size) {
    throw std::out_of_range("VirtualTransport: bad endpoint");
  }
  auto lock = clock_->acquire();
  const auto deadline =
      clock_->now_ns() + std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count();
  auto& mailbox = mailboxes_[static_cast<std::size_t>(self)];
  while (true) {
    while (!mailbox.empty()) {
      comm::Message msg = std::move(mailbox.front());
      mailbox.pop_front();
      if (dead_.count(self) > 0 || dead_.count(msg.source) > 0) {
        ++stats_.suppressed_dead;  // killed mid-queue; the message evaporates
        continue;
      }
      return msg;
    }
    if (down_) {
      return std::nullopt;  // drained + shut down (Communicator throws)
    }
    if (clock_->now_ns() >= deadline) {
      return std::nullopt;
    }
    waiters_[static_cast<std::size_t>(self)].push_back(clock_->self());
    clock_->wait_for_signal_locked(lock, deadline);
    // Deadline expiry leaves us in the waiter queue; a delivery may also
    // have been consumed by a sibling thread of this rank. Drop our stale
    // registration and re-check.
    auto& queue = waiters_[static_cast<std::size_t>(self)];
    queue.erase(std::remove(queue.begin(), queue.end(), clock_->self()), queue.end());
  }
}

void VirtualTransport::shutdown() {
  auto lock = clock_->acquire();
  if (down_) {
    return;
  }
  down_ = true;
  util::ByteBuffer none;
  record_locked('X', -1, -1, 0, none);
  // Release every blocked receiver, rank-ascending then FIFO: determinism
  // even for teardown (the hash is already finalized by now, but a
  // deterministic teardown keeps post-mortem logs comparable).
  for (auto& queue : waiters_) {
    while (!queue.empty()) {
      VirtualClock::Participant* waiter = queue.front();
      queue.pop_front();
      clock_->wake_locked(waiter);
    }
  }
}

bool VirtualTransport::is_shut_down() const {
  auto lock = clock_->acquire();
  return down_;
}

comm::FaultInjectionStats VirtualTransport::stats() const {
  auto lock = clock_->acquire();
  return stats_;
}

std::size_t VirtualTransport::dead_count() const {
  auto lock = clock_->acquire();
  return dead_.size();
}

std::uint64_t VirtualTransport::trajectory_hash() const {
  auto lock = clock_->acquire();
  return hash_;
}

std::uint64_t VirtualTransport::event_count() const {
  auto lock = clock_->acquire();
  return events_;
}

}  // namespace vira::sim
