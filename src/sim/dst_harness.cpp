#include "sim/dst_harness.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "comm/client_link.hpp"
#include "comm/communicator.hpp"
#include "core/command.hpp"
#include "core/protocol.hpp"
#include "core/scheduler.hpp"
#include "core/vmb_data_source.hpp"
#include "core/worker.hpp"
#include "dms/data_item.hpp"
#include "dms/data_server.hpp"
#include "dms/data_source.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace vira::sim {

namespace {

constexpr int kItemsPerFile = 4;

/// In-memory synthetic data source: item i is block i of step 0 of dataset
/// "dst", with a deterministic seed-derived size and content, grouped into
/// "files" of kItemsPerFile so the collective-read strategy has something
/// to collect. Loads burn *virtual* time proportional to the byte count.
class SimDataSource final : public dms::DataSource {
 public:
  SimDataSource(int item_count, int base_bytes, std::uint64_t seed)
      : item_count_(item_count), base_bytes_(base_bytes), seed_(seed) {}

  util::ByteBuffer load(const dms::DataItemName& name) override {
    const int block = block_of(name);
    const std::uint64_t bytes = size_of(block);
    util::clock_sleep(std::chrono::microseconds(100 + static_cast<long>(bytes / 16)));
    return content(block, bytes);
  }

  std::uint64_t item_bytes(const dms::DataItemName& name) const override {
    return size_of(block_of(name));
  }

  std::uint64_t file_bytes(const dms::DataItemName& name) const override {
    const int first = (block_of(name) / kItemsPerFile) * kItemsPerFile;
    std::uint64_t total = 0;
    for (int b = first; b < first + kItemsPerFile && b < item_count_; ++b) {
      total += size_of(b);
    }
    return total;
  }

  std::string file_key(const dms::DataItemName& name) const override {
    return "dst/f" + std::to_string(block_of(name) / kItemsPerFile);
  }

  /// Reference content for the replica-consistency oracle: what any replica
  /// of `block` must contain, regardless of which rank served it.
  util::ByteBuffer expected(int block) const { return content(block, size_of(block)); }

  std::vector<std::pair<dms::DataItemName, util::ByteBuffer>> load_file(
      const dms::DataItemName& name) override {
    const int first = (block_of(name) / kItemsPerFile) * kItemsPerFile;
    std::vector<std::pair<dms::DataItemName, util::ByteBuffer>> items;
    std::uint64_t total = 0;
    for (int b = first; b < first + kItemsPerFile && b < item_count_; ++b) {
      const std::uint64_t bytes = size_of(b);
      total += bytes;
      items.emplace_back(dms::block_item("dst", 0, b), content(b, bytes));
    }
    util::clock_sleep(std::chrono::microseconds(150 + static_cast<long>(total / 16)));
    return items;
  }

 private:
  int block_of(const dms::DataItemName& name) const {
    const int block = static_cast<int>(name.params.get_int("block", -1));
    if (name.source != "dst" || block < 0 || block >= item_count_) {
      throw std::out_of_range("SimDataSource: unknown item " + name.canonical());
    }
    return block;
  }

  std::uint64_t size_of(int block) const {
    // Deterministic per-item size, varied around the base so eviction and
    // byte accounting see unequal blobs.
    const std::uint64_t base = static_cast<std::uint64_t>(base_bytes_);
    return base / 2 + (static_cast<std::uint64_t>(block) * 2654435761ull) % base;
  }

  util::ByteBuffer content(int block, std::uint64_t bytes) const {
    util::Rng rng(seed_ ^ (static_cast<std::uint64_t>(block) * 0x9e3779b97f4a7c15ull));
    util::ByteBuffer buffer;
    std::uint64_t word = 0;
    for (std::uint64_t i = 0; i < bytes; ++i) {
      if (i % 8 == 0) {
        word = rng.next_u64();
      }
      buffer.write<std::uint8_t>(static_cast<std::uint8_t>(word >> ((i % 8) * 8)));
    }
    return buffer;
  }

  int item_count_;
  int base_bytes_;
  std::uint64_t seed_;
};

/// The scenario workload command: streams `partials` fragments, touching
/// the DMS and group collectives in between, then gathers at the master.
/// Pure product-path plumbing — the parameters decide which scheduler /
/// worker / DMS features a scenario exercises.
class DstWorkCommand final : public core::Command {
 public:
  std::string name() const override { return "dst.work"; }

  void execute(core::CommandContext& ctx) override {
    const auto& p = ctx.params();
    const int partials = static_cast<int>(p.get_int("partials", 1));
    const int payload = static_cast<int>(p.get_int("payload", 64));
    const int dms_items = static_cast<int>(p.get_int("dms_items", 0));
    const int first_item = static_cast<int>(p.get_int("first_item", 0));
    const int item_count = static_cast<int>(p.get_int("item_count", 1));
    const bool barrier = p.get_bool("barrier", false);
    const int fail_rank = static_cast<int>(p.get_int("fail_rank", -1));
    const int item_sleep_us = static_cast<int>(p.get_int("item_sleep_us", 0));

    const int window = static_cast<int>(p.get_int("pipeline_window", 0));

    for (int i = 0; i < partials; ++i) {
      ctx.check_abort();
      if (dms_items > 0) {
        util::ScopedPhase read_phase(ctx.phases(), core::kPhaseRead);
        util::TaskPool* pool = ctx.task_pool();
        if (pool != nullptr && window > 0) {
          // Pipelined path: a bounded window of async loads in flight; if
          // the scheduler abandons the attempt mid-window, loads that have
          // not started yet are cancelled (their accounting settles via the
          // tasks' captured tokens — the async oracle checks the balance).
          std::deque<util::Future<dms::Blob>> inflight;
          struct CancelGuard {
            std::deque<util::Future<dms::Blob>>* queue;
            ~CancelGuard() {
              for (auto& future : *queue) {
                future.cancel();
              }
            }
          } guard{&inflight};
          int issued = 0;
          int consumed = 0;
          while (consumed < dms_items) {
            ctx.check_abort();
            while (issued < dms_items && inflight.size() < static_cast<std::size_t>(window)) {
              const int index =
                  (first_item + i * dms_items + issued + ctx.group_rank() * 7) % item_count;
              inflight.push_back(
                  ctx.proxy().request_async(dms::block_item("dst", 0, index), *pool));
              ++issued;
            }
            while (!inflight.front().wait_for(std::chrono::milliseconds(1))) {
              ctx.check_abort();
            }
            (void)inflight.front().get();
            inflight.pop_front();
            ++consumed;
          }
        } else {
          for (int j = 0; j < dms_items; ++j) {
            const int index =
                (first_item + i * dms_items + j + ctx.group_rank() * 7) % item_count;
            (void)ctx.proxy().request(dms::block_item("dst", 0, index));
          }
        }
      }
      if (item_sleep_us > 0) {
        util::ScopedPhase compute_phase(ctx.phases(), core::kPhaseCompute);
        util::clock_sleep(std::chrono::microseconds(item_sleep_us));
      }
      if (barrier) {
        ctx.group_barrier();
      }
      util::ByteBuffer fragment;
      for (int k = 0; k < payload; ++k) {
        fragment.write<std::uint8_t>(static_cast<std::uint8_t>((i * 31 + k) & 0xff));
      }
      ctx.stream_partial(std::move(fragment));
      ctx.report_progress(static_cast<double>(i + 1) / static_cast<double>(partials));
    }

    if (fail_rank == ctx.group_rank()) {
      throw std::runtime_error("dst.work: injected failure on partition " +
                               std::to_string(fail_rank));
    }
    if (fail_rank >= 0) {
      // A sibling partition throws before the collective; skipping the
      // gather keeps the failure path deterministic instead of stranding
      // the survivors on a member that will never contribute.
      return;
    }
    util::ByteBuffer mine;
    mine.write<std::int32_t>(ctx.group_rank());
    auto parts = ctx.gather_at_master(std::move(mine));
    if (ctx.is_master()) {
      util::ByteBuffer merged;
      merged.write<std::uint64_t>(parts.size());
      ctx.send_final(std::move(merged));
    }
  }
};

/// The real stack, assembled like core::Backend but DST-shaped: virtual
/// transport, synthetic data source, direct (in-process) DataServer API,
/// a local command registry, and clock-announced threads.
class DstStack {
 public:
  DstStack(const Scenario& s, std::shared_ptr<VirtualClock> clock)
      : scenario_(s), clock_(std::move(clock)) {
    registry_.register_command("dst.work", [] { return std::make_unique<DstWorkCommand>(); });

    VirtualTransport::Config tconfig;
    tconfig.size = s.workers + 1;
    tconfig.faults.seed = s.seed ^ 0xd57f417a5eedull;
    tconfig.faults.drop_rate = s.drop_rate;
    tconfig.faults.duplicate_rate = s.duplicate_rate;
    tconfig.faults.delay_rate = s.delay_rate;
    tconfig.faults.max_delay = std::chrono::milliseconds(s.max_delay_ms);
    for (const auto& [ms, rank] : s.kills) {
      tconfig.kills.emplace_back(std::chrono::milliseconds(ms), rank);
    }
    transport_ = std::make_shared<VirtualTransport>(clock_, tconfig);

    source_ = std::make_shared<SimDataSource>(s.item_count, s.item_bytes, s.seed);
    server_ = std::make_shared<dms::DataServer>();

    std::vector<std::shared_ptr<comm::Communicator>> comms;
    for (int index = 0; index < s.workers; ++index) {
      comms.push_back(std::make_shared<comm::Communicator>(transport_, index + 1));
    }

    for (int index = 0; index < s.workers; ++index) {
      dms::DataProxyConfig pconfig;
      pconfig.proxy_id = index;
      pconfig.cache.l1_capacity_bytes = s.l1_bytes;
      pconfig.cache.policy = s.policy;
      if (s.l2) {
        pconfig.cache.l2_directory = l2_directory(index);
        pconfig.cache.l2_capacity_bytes = s.l2_bytes;
      }
      pconfig.prefetcher = "null";  // configure_prefetcher installs the real one
      pconfig.async_prefetch = s.async_prefetch;
      proxies_.push_back(std::make_shared<dms::DataProxy>(pconfig, server_, source_));
      if (s.prefetcher != "null") {
        proxies_.back()->configure_prefetcher(
            s.prefetcher, core::make_block_successor(proxies_.back()->resolver(), s.item_count,
                                                     /*step_count=*/1, /*wrap_steps=*/false));
      }
    }
    for (auto& proxy : proxies_) {
      proxy->set_peer_fetch([this](int peer, dms::ItemId id) -> dms::Blob {
        if (peer < 0 || peer >= static_cast<int>(proxies_.size())) {
          return nullptr;
        }
        return proxies_[static_cast<std::size_t>(peer)]->cache().peek(id);
      });
    }

    // Sharded DMS: every proxy gets its own ShardMap (identical seed ⇒
    // identical routing, no shared state — death marks stay local, learned
    // from each proxy's own fetch timeouts) and its worker communicator for
    // the kTagPeerFetch/kTagPeerBlock/kTagPeerPush traffic.
    if (s.shards > 1) {
      dms::ShardMap::Config shard_config;
      shard_config.members = std::min(s.shards, s.workers);
      shard_config.replication = s.repl;
      shard_config.seed = s.seed;
      for (int index = 0; index < s.workers; ++index) {
        proxies_[static_cast<std::size_t>(index)]->configure_sharding(
            std::make_shared<dms::ShardMap>(shard_config), comms[static_cast<std::size_t>(index)],
            std::chrono::milliseconds(50));
      }
      // Bumps must invalidate every replica, not just the scheduler's
      // result cache — a stale replica serving a pre-bump block over the
      // peer wire is exactly what oracle 8/9 would flag.
      server_->names().on_bump([this](std::uint64_t version) {
        for (auto& proxy : proxies_) {
          proxy->on_data_version(version);
        }
      });
    }

    core::SchedulerConfig sconfig;
    sconfig.death_timeout = std::chrono::milliseconds(s.death_ms);
    sconfig.idle_grace = std::chrono::milliseconds(s.idle_grace_ms);
    sconfig.max_retries = s.max_retries;
    sconfig.retry_backoff = std::chrono::milliseconds(s.backoff_ms);
    sconfig.request_timeout = std::chrono::milliseconds(s.request_timeout_ms);
    sconfig.fragment_dedup = s.fragment_dedup;
    sconfig.policy = s.qos_fair ? core::SchedPolicy::kFairShare : core::SchedPolicy::kFifo;
    sconfig.max_queue_per_client = static_cast<std::size_t>(std::max(0, s.max_queue));
    sconfig.max_head_bypass = s.head_bypass;
    if (s.result_cache_kb > 0) {
      sconfig.result_cache.enabled = true;
      sconfig.result_cache.memory_bytes = static_cast<std::uint64_t>(s.result_cache_kb) * 1024;
      // Reuse the scenario's DMS policy so all replacement classes get
      // exercised on the result-cache side too.
      sconfig.result_cache.policy = s.policy;
    }
    scheduler_ = std::make_unique<core::Scheduler>(transport_, s.workers, sconfig);
    if (s.result_cache_kb > 0) {
      // Only wired when the cache is on: the name-service version feed is
      // what invalidation keys off, and leaving it detached in rc=0 runs
      // keeps legacy trajectories byte-identical.
      scheduler_->set_data_server(server_);
    }

    core::WorkerConfig wconfig;
    wconfig.heartbeat_interval = std::chrono::milliseconds(s.heartbeat_ms);
    wconfig.pipeline_threads = s.pipeline_threads;
    for (int index = 0; index < s.workers; ++index) {
      workers_.push_back(std::make_unique<core::Worker>(
          comms[static_cast<std::size_t>(index)], proxies_[static_cast<std::size_t>(index)],
          nullptr, &registry_, wconfig));
    }

    for (int index = 0; index < std::max(1, s.clients); ++index) {
      auto [client_side, server_side] = comm::make_inproc_link_pair();
      clients_.push_back(std::move(client_side));
      scheduler_->attach_client(std::move(server_side));
    }
  }

  ~DstStack() {
    stop();
    // The proxies join their prefetch threads in their destructors (via the
    // clock), so the stack must be destroyed while the driver still
    // participates in the machine.
    workers_.clear();
    proxies_.clear();
    if (!l2_root_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(l2_root_, ec);
    }
  }

  /// Spawns the scheduler and worker threads as clock participants. Caller
  /// must hold the machine token (be the driver).
  void start() {
    clock_->announce_thread("sched");
    threads_.emplace_back([this] {
      clock_->thread_begin("sched");
      scheduler_->run();
      clock_->thread_end();
    });
    for (int index = 0; index < scenario_.workers; ++index) {
      const std::string name = "worker." + std::to_string(index + 1);
      clock_->announce_thread(name);
      core::Worker* worker = workers_[static_cast<std::size_t>(index)].get();
      threads_.emplace_back([this, worker, name] {
        clock_->thread_begin(name);
        worker->run();
        clock_->thread_end();
      });
    }
  }

  void stop() {
    if (stopped_) {
      return;
    }
    stopped_ = true;
    scheduler_->stop();
    if (!threads_.empty()) {
      clock_->join_thread(threads_.front());  // scheduler exits, sends shutdowns
    }
    // Shut the transport down before joining workers: a killed rank never
    // receives its orderly kTagShutdown (suppressed), so its service loop
    // only exits via TransportClosed (mirrors core::Backend::shutdown).
    transport_->shutdown();
    for (std::size_t i = 1; i < threads_.size(); ++i) {
      clock_->join_thread(threads_[i]);
    }
    threads_.clear();
  }

  comm::ClientLink& client(std::size_t index = 0) { return *clients_.at(index); }
  std::size_t client_count() const { return clients_.size(); }
  dms::DataServer& server() { return *server_; }
  SimDataSource& sim_source() { return *source_; }
  /// Invalidates every memoized result (scenario `bumps=` schedule).
  void bump_data_version() { server_->names().bump_data_version(); }
  core::Scheduler& scheduler() { return *scheduler_; }
  VirtualTransport& transport() { return *transport_; }
  std::vector<std::shared_ptr<dms::DataProxy>>& proxies() { return proxies_; }

 private:
  std::string l2_directory(int index) {
    if (l2_root_.empty()) {
      // Distinct per stack AND per process: dst_test and vira-dst run the
      // same seeds concurrently under parallel ctest, and a shared spill
      // directory would let them clobber each other's L2 files — observed
      // as a trajectory-hash divergence on replay.
      static std::atomic<std::uint64_t> counter{0};
      l2_root_ = (std::filesystem::temp_directory_path() /
                  ("vira_dst_l2_" + std::to_string(::getpid()) + "_" +
                   std::to_string(counter.fetch_add(1))))
                     .string();
    }
    return l2_root_ + "/proxy_" + std::to_string(index);
  }

  Scenario scenario_;
  std::shared_ptr<VirtualClock> clock_;
  core::CommandRegistry registry_;
  std::shared_ptr<VirtualTransport> transport_;
  std::shared_ptr<SimDataSource> source_;
  std::shared_ptr<dms::DataServer> server_;
  std::vector<std::shared_ptr<dms::DataProxy>> proxies_;
  std::unique_ptr<core::Scheduler> scheduler_;
  std::vector<std::unique_ptr<core::Worker>> workers_;
  std::vector<std::shared_ptr<comm::ClientLink>> clients_;
  std::vector<std::thread> threads_;
  std::string l2_root_;
  bool stopped_ = false;
};

/// Client-side bookkeeping for the oracles.
struct RequestState {
  bool submitted = false;
  bool cancel_sent = false;
  bool complete = false;
  bool rejected = false;
  bool success = false;
  bool degraded_seen = false;
  bool error_seen = false;
  std::uint32_t retries = 0;
  std::set<std::pair<std::int32_t, std::uint32_t>> fragments;  ///< (partition, sequence)
  bool duplicate_reported = false;
  /// Result-cache oracle state: the dataset version current at submission,
  /// whether the completion was served from the cache, and the delivered
  /// fragment stream as an ordered list of content hashes (partition,
  /// sequence, finality, body bytes — request id excluded, it legitimately
  /// differs between an original and its replay).
  std::uint64_t version_at_submit = 1;
  bool cache_hit = false;
  std::vector<std::uint64_t> frag_seq;
};

/// Content hash of one delivered fragment (FNV-1a over the identity the
/// replay-identical oracle compares: everything except the request id).
std::uint64_t fragment_hash(const core::FragmentHeader& header, bool final_fragment,
                            const util::ByteBuffer& payload) {
  std::uint64_t hash = 14695981039346656037ull;
  auto mix = [&hash](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  };
  mix(&header.partition, sizeof(header.partition));
  mix(&header.sequence, sizeof(header.sequence));
  const std::uint8_t final_flag = final_fragment ? 1 : 0;
  mix(&final_flag, sizeof(final_flag));
  const std::size_t body_at = payload.read_pos();
  mix(payload.data() + body_at, payload.size() - body_at);
  return hash;
}

/// Workload identity of a DstRequest: two requests with the same signature
/// submit byte-identical (command, params) pairs, so a cache hit on one may
/// only ever replay a result computed for the other.
std::string workload_signature(const Scenario& scenario, const DstRequest& spec) {
  std::ostringstream out;
  out << spec.width << ':' << spec.partials << ':' << spec.payload << ':' << spec.dms_items
      << ':' << spec.first_item << ':' << (spec.barrier ? 1 : 0) << ':' << spec.fail_rank << ':'
      << spec.item_sleep_us << ':' << scenario.item_count << ':' << scenario.pipeline_window;
  return out.str();
}

}  // namespace

std::string Scenario::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed << ";workers=" << workers << ";drop=" << drop_rate
      << ";dup=" << duplicate_rate << ";delay=" << delay_rate << ";maxdelay=" << max_delay_ms
      << ";policy=" << policy << ";l1=" << l1_bytes << ";l2=" << (l2 ? l2_bytes : 0)
      << ";pf=" << prefetcher << ";apf=" << (async_prefetch ? 1 : 0) << ";items=" << item_count
      << ";ibytes=" << item_bytes << ";hb=" << heartbeat_ms << ";death=" << death_ms
      << ";grace=" << idle_grace_ms << ";retries=" << max_retries << ";backoff=" << backoff_ms
      << ";timeout=" << request_timeout_ms << ";dedup=" << (fragment_dedup ? 1 : 0)
      << ";cl=" << clients << ";qos=" << (qos_fair ? 1 : 0) << ";maxq=" << max_queue
      << ";bypass=" << head_bypass
      << ";pt=" << pipeline_threads << ";pw=" << pipeline_window
      << ";rc=" << result_cache_kb
      << ";shards=" << shards << ";repl=" << repl
      << ";stall=" << stall_budget_ms;
  out << ";bumps=";
  for (std::size_t i = 0; i < bumps.size(); ++i) {
    out << (i ? "," : "") << bumps[i];
  }
  out << ";kills=";
  for (std::size_t i = 0; i < kills.size(); ++i) {
    out << (i ? "," : "") << kills[i].first << ":" << kills[i].second;
  }
  out << ";reqs=";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const DstRequest& r = requests[i];
    out << (i ? "," : "") << r.width << ":" << r.partials << ":" << r.payload << ":"
        << r.dms_items << ":" << r.first_item << ":" << (r.barrier ? 1 : 0) << ":"
        << r.fail_rank << ":" << r.submit_at_ms << ":" << r.item_sleep_us << ":"
        << r.client << ":" << r.cancel_at_ms;
  }
  return out.str();
}

std::optional<Scenario> Scenario::parse(const std::string& text) {
  Scenario s;
  s.requests.clear();
  std::istringstream in(text);
  std::string field;
  try {
    while (std::getline(in, field, ';')) {
      const auto eq = field.find('=');
      if (eq == std::string::npos) {
        return std::nullopt;
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "seed") {
        s.seed = std::stoull(value);
      } else if (key == "workers") {
        s.workers = std::stoi(value);
      } else if (key == "drop") {
        s.drop_rate = std::stod(value);
      } else if (key == "dup") {
        s.duplicate_rate = std::stod(value);
      } else if (key == "delay") {
        s.delay_rate = std::stod(value);
      } else if (key == "maxdelay") {
        s.max_delay_ms = std::stoi(value);
      } else if (key == "policy") {
        s.policy = value;
      } else if (key == "l1") {
        s.l1_bytes = std::stoull(value);
      } else if (key == "l2") {
        s.l2_bytes = std::stoull(value);
        s.l2 = s.l2_bytes > 0;
      } else if (key == "pf") {
        s.prefetcher = value;
      } else if (key == "apf") {
        s.async_prefetch = value == "1";
      } else if (key == "items") {
        s.item_count = std::stoi(value);
      } else if (key == "ibytes") {
        s.item_bytes = std::stoi(value);
      } else if (key == "hb") {
        s.heartbeat_ms = std::stoi(value);
      } else if (key == "death") {
        s.death_ms = std::stoi(value);
      } else if (key == "grace") {
        s.idle_grace_ms = std::stoi(value);
      } else if (key == "retries") {
        s.max_retries = std::stoi(value);
      } else if (key == "backoff") {
        s.backoff_ms = std::stoi(value);
      } else if (key == "timeout") {
        s.request_timeout_ms = std::stoi(value);
      } else if (key == "dedup") {
        s.fragment_dedup = value == "1";
      } else if (key == "cl") {
        s.clients = std::stoi(value);
      } else if (key == "qos") {
        s.qos_fair = value == "1";
      } else if (key == "maxq") {
        s.max_queue = std::stoi(value);
      } else if (key == "bypass") {
        s.head_bypass = std::stoi(value);
      } else if (key == "pt") {
        s.pipeline_threads = std::stoi(value);
      } else if (key == "pw") {
        s.pipeline_window = std::stoi(value);
      } else if (key == "rc") {
        s.result_cache_kb = std::stoi(value);
      } else if (key == "shards") {
        s.shards = std::stoi(value);
      } else if (key == "repl") {
        s.repl = std::stoi(value);
      } else if (key == "bumps") {
        std::istringstream list(value);
        std::string entry;
        while (std::getline(list, entry, ',')) {
          s.bumps.push_back(std::stoi(entry));
        }
      } else if (key == "stall") {
        s.stall_budget_ms = std::stoi(value);
      } else if (key == "kills") {
        std::istringstream list(value);
        std::string entry;
        while (std::getline(list, entry, ',')) {
          const auto colon = entry.find(':');
          if (colon == std::string::npos) {
            return std::nullopt;
          }
          s.kills.emplace_back(std::stoi(entry.substr(0, colon)),
                               std::stoi(entry.substr(colon + 1)));
        }
      } else if (key == "reqs") {
        std::istringstream list(value);
        std::string entry;
        while (std::getline(list, entry, ',')) {
          std::istringstream parts(entry);
          std::string part;
          std::vector<int> numbers;
          while (std::getline(parts, part, ':')) {
            numbers.push_back(std::stoi(part));
          }
          // 9 numbers = the pre-QoS layout; 10/11 append client and
          // cancel_at_ms (older replay strings stay parseable).
          if (numbers.size() < 9 || numbers.size() > 11) {
            return std::nullopt;
          }
          DstRequest r;
          r.width = numbers[0];
          r.partials = numbers[1];
          r.payload = numbers[2];
          r.dms_items = numbers[3];
          r.first_item = numbers[4];
          r.barrier = numbers[5] != 0;
          r.fail_rank = numbers[6];
          r.submit_at_ms = numbers[7];
          r.item_sleep_us = numbers[8];
          if (numbers.size() > 9) {
            r.client = numbers[9];
          }
          if (numbers.size() > 10) {
            r.cancel_at_ms = numbers[10];
          }
          s.requests.push_back(r);
        }
      } else {
        return std::nullopt;
      }
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (s.workers < 1 || s.requests.empty()) {
    return std::nullopt;
  }
  return s;
}

ScenarioResult run_scenario(const Scenario& scenario) {
  if (scenario.workers < 1 || scenario.requests.empty()) {
    throw std::invalid_argument("run_scenario: need >= 1 worker and >= 1 request");
  }
  ScenarioResult result;
  auto clock = std::make_shared<VirtualClock>();

  // Real-time watchdog, outside the token machine: a scenario that stops
  // consuming *real* CPU progress for this long has wedged the machine (a
  // bug in the DST conversion, e.g. a product path blocking on a real
  // primitive) — dump the participant states so the wedge is debuggable.
  // Reads only happen under the machine lock; determinism is unaffected.
  std::atomic<bool> scenario_done{false};
  std::thread watchdog([&clock, &scenario_done] {
    const auto started = std::chrono::steady_clock::now();
    std::int64_t last_virtual = -1;
    std::uint64_t last_switches = 0;
    while (!scenario_done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (std::chrono::steady_clock::now() - started < std::chrono::seconds(20)) {
        continue;
      }
      const std::int64_t virtual_now = clock->now_ns();
      const std::uint64_t switches = clock->switches();
      if (virtual_now == last_virtual && switches == last_switches) {
        std::cerr << "vira-dst watchdog: machine wedged (no progress in 20s real time)\n";
        clock->dump_state(std::cerr);
        std::abort();
      }
      last_virtual = virtual_now;
      last_switches = switches;
    }
  });

  util::set_global_clock(clock.get());
  clock->register_driver();
  {
    DstStack stack(scenario, clock);
    stack.start();

    std::map<std::uint64_t, RequestState> states;
    for (std::size_t i = 0; i < scenario.requests.size(); ++i) {
      states[static_cast<std::uint64_t>(i + 1)];
    }
    const std::int64_t start_ns = clock->now_ns();
    const std::int64_t stall_ns =
        static_cast<std::int64_t>(scenario.stall_budget_ms) * 1000000;
    std::int64_t last_progress = start_ns;
    auto note_violation = [&result](const std::string& text) {
      result.violations.push_back(text);
    };

    auto handle = [&](comm::Message& msg) {
      switch (msg.tag) {
        case core::kTagPartial:
        case core::kTagFinal: {
          auto header = core::FragmentHeader::deserialize(msg.payload);
          auto& state = states[header.request_id];
          ++result.fragments;
          if (state.fragments.emplace(header.partition, header.sequence).second) {
            // First delivery only: the replay-identical oracle compares
            // streams as the client accepts them, and a transport duplicate
            // is already its own (exactly-once) violation.
            state.frag_seq.push_back(
                fragment_hash(header, msg.tag == core::kTagFinal, msg.payload));
          } else if (!state.duplicate_reported) {
            state.duplicate_reported = true;
            note_violation("exactly-once: request " + std::to_string(header.request_id) +
                           " fragment (partition " + std::to_string(header.partition) +
                           ", sequence " + std::to_string(header.sequence) +
                           ") delivered twice");
          }
          break;
        }
        case core::kTagProgress:
          break;
        case core::kTagDegraded: {
          const auto id = msg.payload.read<std::uint64_t>();
          states[id].degraded_seen = true;
          break;
        }
        case core::kTagError: {
          const auto id = msg.payload.read<std::uint64_t>();
          states[id].error_seen = true;
          break;
        }
        case core::kTagRejected: {
          const auto id = msg.payload.read<std::uint64_t>();
          auto& state = states[id];
          if (state.rejected || state.complete) {
            note_violation("terminal: request " + std::to_string(id) +
                           " rejected after a terminal answer");
            break;
          }
          state.rejected = true;
          ++result.rejected;
          auto& terminal = result.terminals[id];
          terminal.at_ns = clock->now_ns() - start_ns;
          terminal.rejected = true;
          break;
        }
        case core::kTagComplete: {
          auto stats = core::CommandStats::deserialize(msg.payload);
          auto& state = states[stats.request_id];
          if (state.complete || state.rejected) {
            note_violation("terminal: request " + std::to_string(stats.request_id) +
                           " completed twice (or after a rejection)");
            break;
          }
          state.complete = true;
          state.success = stats.success;
          state.retries = stats.retries;
          state.cache_hit = stats.cache_hit;
          auto& terminal = result.terminals[stats.request_id];
          terminal.at_ns = clock->now_ns() - start_ns;
          terminal.workers = stats.workers;
          terminal.requested_workers = stats.requested_workers;
          terminal.success = stats.success;
          terminal.cache_hit = stats.cache_hit;
          terminal.data_version = stats.data_version;
          ++result.completed;
          if (stats.cache_hit) {
            ++result.cache_hits;
            // A hit bypasses the work group entirely: it can only replay a
            // fully-successful capture, so it must itself be a clean,
            // retry-free success.
            if (!stats.success || stats.retries > 0 || state.degraded_seen) {
              note_violation("result-cache: request " + std::to_string(stats.request_id) +
                             " was a cache hit but not a clean success (success=" +
                             std::to_string(stats.success) +
                             " retries=" + std::to_string(stats.retries) + ")");
            }
          }
          // No-stale: whatever served this request (cache or recompute) must
          // have been keyed at a dataset version no older than the one
          // current when the client submitted it.
          if (scenario.result_cache_kb > 0 && stats.data_version != 0 &&
              stats.data_version < state.version_at_submit) {
            note_violation("result-cache: request " + std::to_string(stats.request_id) +
                           " served at dataset version " + std::to_string(stats.data_version) +
                           " < version " + std::to_string(state.version_at_submit) +
                           " current at submission (stale geometry)");
          }
          if (stats.success) {
            ++result.succeeded;
          } else {
            ++result.failed;
          }
          if (stats.retries > 0) {
            ++result.degraded;
            if (!state.degraded_seen) {
              note_violation("terminal: request " + std::to_string(stats.request_id) +
                             " retried " + std::to_string(stats.retries) +
                             "x without a kTagDegraded notice");
            }
          }
          if (!stats.success && !state.error_seen) {
            note_violation("terminal: request " + std::to_string(stats.request_id) +
                           " failed without a kTagError notice");
          }
          break;
        }
        default:
          note_violation("client: unexpected tag " + std::to_string(msg.tag));
      }
    };

    // Route each request through its client's link (clamped so hand-built
    // scenarios with out-of-range client indices still run).
    const auto client_of = [&](const DstRequest& spec) {
      const int bound = static_cast<int>(stack.client_count());
      return static_cast<std::size_t>(std::clamp(spec.client, 0, bound - 1));
    };

    const int total = static_cast<int>(scenario.requests.size());
    // Dataset-version schedule: the driver mirrors the version counter the
    // scheduler reads (NameService starts at 1, each bump adds 1) so the
    // no-stale oracle can stamp every submission with the version that was
    // current when it left the client.
    std::vector<bool> bump_done(scenario.bumps.size(), false);
    std::uint64_t driver_version = 1;
    bool stalled = false;
    // Post-kill fallback accounting: snapshot the disk-fallback total once
    // the last scheduled kill has fired; the delta to the end of the run is
    // what replica coverage failed to absorb (peer_fallback_disk_after_kill).
    int last_kill_ms = -1;
    for (const auto& [kill_ms, kill_rank] : scenario.kills) {
      (void)kill_rank;
      last_kill_ms = std::max(last_kill_ms, kill_ms);
    }
    bool kill_snapshot_done = false;
    std::uint64_t fallback_at_kill = 0;
    auto sum_fallback_disk = [&stack] {
      std::uint64_t total_fallbacks = 0;
      for (auto& proxy : stack.proxies()) {
        total_fallbacks += proxy->stats().snapshot().peer_fallback_disk;
      }
      return total_fallbacks;
    };
    while (result.completed + result.rejected < total) {
      const std::int64_t now = clock->now_ns();
      for (std::size_t b = 0; b < scenario.bumps.size(); ++b) {
        if (!bump_done[b] &&
            now - start_ns >= static_cast<std::int64_t>(scenario.bumps[b]) * 1000000) {
          stack.bump_data_version();
          ++driver_version;
          bump_done[b] = true;
          last_progress = now;
        }
      }
      if (!kill_snapshot_done && last_kill_ms >= 0 &&
          now - start_ns >= static_cast<std::int64_t>(last_kill_ms) * 1000000) {
        fallback_at_kill = sum_fallback_disk();
        kill_snapshot_done = true;
      }
      for (std::size_t i = 0; i < scenario.requests.size(); ++i) {
        const DstRequest& spec = scenario.requests[i];
        auto& state = states[static_cast<std::uint64_t>(i + 1)];
        // A scheduled cancel fires once the request is submitted and its
        // virtual due time passed (terminal answer still required: the
        // cancelled request completes with an error instead of hanging).
        if (state.submitted && !state.cancel_sent && spec.cancel_at_ms >= 0 &&
            !state.complete && !state.rejected &&
            now - start_ns >= static_cast<std::int64_t>(spec.cancel_at_ms) * 1000000) {
          comm::Message cancel;
          cancel.source = 0;
          cancel.tag = core::kTagCancel;
          cancel.payload.write<std::uint64_t>(static_cast<std::uint64_t>(i + 1));
          stack.client(client_of(spec)).send(std::move(cancel));
          state.cancel_sent = true;
          last_progress = now;
        }
        if (state.submitted ||
            now - start_ns < static_cast<std::int64_t>(spec.submit_at_ms) * 1000000) {
          continue;
        }
        core::CommandRequest request;
        request.request_id = static_cast<std::uint64_t>(i + 1);
        request.command = "dst.work";
        request.params.set_int("partials", spec.partials);
        request.params.set_int("payload", spec.payload);
        request.params.set_int("dms_items", spec.dms_items);
        request.params.set_int("first_item", spec.first_item);
        request.params.set_int("item_count", scenario.item_count);
        request.params.set_bool("barrier", spec.barrier);
        request.params.set_int("fail_rank", spec.fail_rank);
        request.params.set_int("item_sleep_us", spec.item_sleep_us);
        if (scenario.pipeline_window > 0) {
          request.params.set_int("pipeline_window", scenario.pipeline_window);
        }
        if (spec.width > 0) {
          request.params.set_int("workers", spec.width);
        }
        comm::Message msg;
        msg.source = 0;
        msg.tag = core::kTagSubmit;
        request.serialize(msg.payload);
        stack.client(client_of(spec)).send(std::move(msg));
        state.submitted = true;
        state.version_at_submit = driver_version;
        last_progress = now;
      }
      for (std::size_t link = 0; link < stack.client_count(); ++link) {
        while (auto msg = stack.client(link).recv(std::chrono::milliseconds(0))) {
          handle(*msg);
          last_progress = clock->now_ns();
        }
      }
      if (clock->now_ns() - last_progress > stall_ns) {
        note_violation("stall: no client-visible progress for " +
                       std::to_string(scenario.stall_budget_ms) + " virtual ms (" +
                       std::to_string(result.completed) + "/" + std::to_string(total) +
                       " requests complete)");
        stalled = true;
        break;
      }
      util::clock_sleep(std::chrono::milliseconds(1));
    }

    // Worker conservation: with every request terminal, the pool must
    // settle — every rank free or declared lost, no group or queue entry
    // leaked. Reads are token-serialized (the scheduler thread is parked).
    if (!stalled) {
      const std::int64_t settle_deadline = clock->now_ns() + stall_ns;
      auto settled = [&] {
        return stack.scheduler().free_workers() + stack.scheduler().lost_workers() ==
                   static_cast<std::size_t>(scenario.workers) &&
               stack.scheduler().active_groups() == 0 &&
               stack.scheduler().queued_requests() == 0;
      };
      while (!settled() && clock->now_ns() < settle_deadline) {
        util::clock_sleep(std::chrono::milliseconds(5));
      }
      if (!settled()) {
        note_violation(
            "conservation: pool did not settle (free=" +
            std::to_string(stack.scheduler().free_workers()) +
            " lost=" + std::to_string(stack.scheduler().lost_workers()) +
            " of " + std::to_string(scenario.workers) +
            ", groups=" + std::to_string(stack.scheduler().active_groups()) +
            ", queued=" + std::to_string(stack.scheduler().queued_requests()) + ")");
      }
    }

    // QoS oracles. No starvation: the aging bound must really bound how
    // often a ready head was bypassed (kFairShare; trivially 0 under
    // kFifo). Rejection integrity: an admission-refused request must never
    // have produced data.
    result.backfills = stack.scheduler().total_backfills();
    result.max_head_bypass_seen = stack.scheduler().max_head_bypass_observed();
    if (result.max_head_bypass_seen > scenario.head_bypass) {
      note_violation("starvation: a queue head was bypassed " +
                     std::to_string(result.max_head_bypass_seen) +
                     " times (aging bound " + std::to_string(scenario.head_bypass) + ")");
    }
    for (const auto& [id, state] : states) {
      if (state.rejected && !state.fragments.empty()) {
        note_violation("rejection: request " + std::to_string(id) +
                       " was rejected but delivered " +
                       std::to_string(state.fragments.size()) + " fragments");
      }
    }

    // Replay-identical: every cache-hit stream must be byte-identical (as
    // hashed per accepted fragment, in delivery order) to the stream of
    // some genuinely-computed request with the same workload signature.
    // The cache may only ever replay what a work group really produced.
    if (scenario.result_cache_kb > 0 && result.cache_hits > 0) {
      std::map<std::string, std::vector<const std::vector<std::uint64_t>*>> originals;
      for (std::size_t i = 0; i < scenario.requests.size(); ++i) {
        const auto& state = states[static_cast<std::uint64_t>(i + 1)];
        if (state.complete && state.success && !state.cache_hit) {
          originals[workload_signature(scenario, scenario.requests[i])].push_back(
              &state.frag_seq);
        }
      }
      for (std::size_t i = 0; i < scenario.requests.size(); ++i) {
        const auto& state = states[static_cast<std::uint64_t>(i + 1)];
        if (!state.cache_hit) {
          continue;
        }
        const auto it = originals.find(workload_signature(scenario, scenario.requests[i]));
        bool matched = false;
        if (it != originals.end()) {
          for (const auto* original : it->second) {
            if (*original == state.frag_seq) {
              matched = true;
              break;
            }
          }
        }
        if (!matched) {
          note_violation("result-cache: request " + std::to_string(i + 1) +
                         " was a cache hit but its fragment stream matches no computed "
                         "original with the same workload");
        }
      }
    }

    // Cache accounting, after draining the prefetch pipelines in virtual
    // time so no load is mid-flight.
    for (auto& proxy : stack.proxies()) {
      proxy->quiesce();
    }

    // Sharded-DMS aggregates (zero when shards=1: the counters never move).
    for (auto& proxy : stack.proxies()) {
      const auto counters = proxy->stats().snapshot();
      result.peer_fetches += counters.peer_fetches;
      result.peer_pushes += counters.peer_pushes;
      result.replica_promotions += counters.replica_promotions;
      result.peer_fallback_disk += counters.peer_fallback_disk;
      result.stale_replica_rejects += counters.stale_replica_rejects;
    }
    if (kill_snapshot_done) {
      result.peer_fallback_disk_after_kill = result.peer_fallback_disk - fallback_at_kill;
    }

    // Replica consistency (oracle 9): whatever path put a block into a
    // proxy's L1 — own disk load, peer fetch from any replica, unsolicited
    // push — its bytes must equal the synthetic source's content for that
    // id. A corrupting serialization bug or a wrong-item reply shows up
    // here no matter which rank answered.
    if (scenario.shards > 1) {
      for (auto& proxy : stack.proxies()) {
        const std::string tag = "replica(proxy " + std::to_string(proxy->id()) + "): ";
        const auto& l1 = proxy->cache().l1();
        for (const dms::ItemId id : l1.resident()) {
          const dms::Blob blob = l1.peek(id);
          if (!blob) {
            continue;  // the byte-accounting oracle already flags this
          }
          const auto name = stack.server().names().lookup(id);
          if (!name) {
            note_violation(tag + "resident item " + std::to_string(id) +
                           " has no name-service entry");
            continue;
          }
          const int block = static_cast<int>(name->params.get_int("block", -1));
          const util::ByteBuffer want = stack.sim_source().expected(block);
          if (!(*blob == want)) {
            note_violation(tag + "item " + std::to_string(id) + " (block " +
                           std::to_string(block) + ") bytes diverge from the source: " +
                           std::to_string(blob->size()) + " vs " + std::to_string(want.size()) +
                           " bytes");
          }
        }
      }
    }

    // Async (pipelined-executor) accounting. Loads still running when an
    // attempt was abandoned finish on the pool in virtual time — wait for
    // the books to balance, then check that every submission settled and
    // that the bounded window really bounded outstanding bytes. At most
    // `pipeline_window` submissions are outstanding per attempt plus up to
    // `pipeline_threads` running tasks surviving an abort (only queued
    // loads are cancellable); items are at most 1.5 × item_bytes
    // (SimDataSource::size_of).
    if (scenario.pipeline_threads > 0 && scenario.pipeline_window > 0) {
      const std::int64_t drain_deadline = clock->now_ns() + stall_ns;
      auto async_drained = [&stack] {
        for (auto& proxy : stack.proxies()) {
          const auto counters = proxy->stats().snapshot();
          if (counters.async_submitted != counters.async_settled) {
            return false;
          }
        }
        return true;
      };
      while (!async_drained() && clock->now_ns() < drain_deadline) {
        util::clock_sleep(std::chrono::milliseconds(2));
      }
      const std::uint64_t max_item_bytes =
          static_cast<std::uint64_t>(scenario.item_bytes) * 3 / 2 + 1;
      const std::uint64_t inflight_bound =
          static_cast<std::uint64_t>(scenario.pipeline_window + scenario.pipeline_threads) *
          max_item_bytes;
      for (auto& proxy : stack.proxies()) {
        const auto counters = proxy->stats().snapshot();
        const std::string tag = "async(proxy " + std::to_string(proxy->id()) + "): ";
        if (counters.async_submitted != counters.async_settled) {
          note_violation(tag + "submitted " + std::to_string(counters.async_submitted) +
                         " != settled " + std::to_string(counters.async_settled) +
                         " (in-flight bytes leaked: " +
                         std::to_string(counters.async_inflight_bytes) + ")");
        }
        if (counters.async_peak_bytes > inflight_bound) {
          note_violation(tag + "peak in-flight " + std::to_string(counters.async_peak_bytes) +
                         " bytes exceeds window bound " + std::to_string(inflight_bound));
        }
      }
    }
    for (auto& proxy : stack.proxies()) {
      const auto counters = proxy->stats().snapshot();
      const std::string tag = "cache(proxy " + std::to_string(proxy->id()) + "): ";
      if (counters.requests != counters.l1_hits + counters.l2_hits + counters.misses) {
        note_violation(tag + "requests " + std::to_string(counters.requests) +
                       " != l1 " + std::to_string(counters.l1_hits) + " + l2 " +
                       std::to_string(counters.l2_hits) + " + miss " +
                       std::to_string(counters.misses));
      }
      if (counters.prefetch_useful > counters.prefetch_issued) {
        note_violation(tag + "prefetch_useful exceeds prefetch_issued");
      }
      // Prefetch bookkeeping boundedness: every still-pending speculative
      // insert must be backed by a resident item — anything that left both
      // tiers must have been erased (and counted wasted), or the pending
      // map grows without bound for the life of the proxy.
      if (proxy->cache().prefetch_pending_count() >
          proxy->cache().l1().item_count() + proxy->cache().l2_item_count()) {
        note_violation(tag + "prefetch bookkeeping leaked: " +
                       std::to_string(proxy->cache().prefetch_pending_count()) +
                       " pending entries exceed " +
                       std::to_string(proxy->cache().l1().item_count()) + " L1 + " +
                       std::to_string(proxy->cache().l2_item_count()) + " L2 residents");
      }
      const auto& l1 = proxy->cache().l1();
      std::uint64_t resident_bytes = 0;
      for (const dms::ItemId id : l1.resident()) {
        if (const dms::Blob blob = l1.peek(id)) {
          resident_bytes += blob->size();
        } else {
          note_violation(tag + "resident item " + std::to_string(id) + " has no blob");
        }
      }
      if (resident_bytes != l1.size_bytes()) {
        note_violation(tag + "L1 byte accounting drifted: resident " +
                       std::to_string(resident_bytes) + " != accounted " +
                       std::to_string(l1.size_bytes()));
      }
      if (l1.size_bytes() > l1.capacity_bytes()) {
        note_violation(tag + "L1 over capacity: " + std::to_string(l1.size_bytes()) + " > " +
                       std::to_string(l1.capacity_bytes()));
      }
      if (scenario.l2 && proxy->cache().l2_size_bytes() > scenario.l2_bytes) {
        note_violation(tag + "L2 over capacity: " +
                       std::to_string(proxy->cache().l2_size_bytes()) + " > " +
                       std::to_string(scenario.l2_bytes));
      }
    }

    // Finalize the deterministic trajectory before teardown: joins leave
    // the machine and race the OS, so everything after this point is
    // excluded from the replay contract.
    result.trajectory_hash = stack.transport().trajectory_hash();
    result.transport_events = stack.transport().event_count();
    result.context_switches = clock->switches();
    result.virtual_end_ns = clock->now_ns();
    result.faults = stack.transport().stats();
    result.ranks_killed = stack.transport().dead_count();

    stack.stop();
  }
  clock->unregister_driver();
  util::set_global_clock(nullptr);
  scenario_done.store(true);
  watchdog.join();
  return result;
}

}  // namespace vira::sim
