#include "sim/dst_fuzz.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace vira::sim {

Scenario generate_scenario(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5ce9a6c0de7ull);
  Scenario s;
  s.seed = seed;
  s.requests.clear();
  s.workers = 1 + static_cast<int>(rng.next_below(4));

  // Stack configuration.
  static const char* kPolicies[] = {"lru", "lfu", "fbr"};
  s.policy = kPolicies[rng.next_below(3)];
  s.item_bytes = rng.next_below(2) == 0 ? 512 : 1024;
  s.item_count = 16 + static_cast<int>(rng.next_below(17));
  // Keep L1 at >= 4 items so the workload churns the cache without
  // degenerating into oversize-put edge cases.
  s.l1_bytes = static_cast<std::uint64_t>(s.item_bytes) * (4 + rng.next_below(13));
  s.l2 = rng.next_below(3) == 0;
  s.l2_bytes = s.l1_bytes * 4;
  s.prefetcher = rng.next_below(3) == 0 ? "null" : "obl";
  s.async_prefetch = rng.next_below(2) == 0;
  // Pipelined executor: roughly half the scenarios route their DMS loads
  // through the async task-pool window (exercising request_async, the
  // in-flight bound and cancellation-on-abort); the rest stay serial.
  if (rng.next_below(2) == 0) {
    s.pipeline_threads = 1 + static_cast<int>(rng.next_below(2));
    s.pipeline_window = 1 + static_cast<int>(rng.next_below(4));
  }

  // Fault schedule. Liveness rule: a lossy transport (drops) needs the
  // whole-attempt watchdog, because dropped group-internal collective
  // traffic is invisible to heartbeat-based detection.
  if (rng.next_below(2) == 0) {
    s.drop_rate = 0.01 + 0.14 * rng.next_double();
  }
  if (rng.next_below(2) == 0) {
    s.duplicate_rate = 0.01 + 0.14 * rng.next_double();
  }
  if (rng.next_below(2) == 0) {
    s.delay_rate = 0.05 + 0.25 * rng.next_double();
    s.max_delay_ms = 1 + static_cast<int>(rng.next_below(8));
  }
  if (s.drop_rate > 0.0) {
    s.request_timeout_ms = 300 + static_cast<int>(rng.next_below(301));
  }
  if (s.workers >= 2 && rng.next_below(3) == 0) {
    const int when = 50 + static_cast<int>(rng.next_below(351));
    const int victim = 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.workers)));
    s.kills.emplace_back(when, victim);
  }

  // Scheduler / worker policy.
  s.heartbeat_ms = 15 + static_cast<int>(rng.next_below(16));
  s.death_ms = 100 + static_cast<int>(rng.next_below(101));
  s.idle_grace_ms = 30 + static_cast<int>(rng.next_below(31));
  s.max_retries = 2 + static_cast<int>(rng.next_below(3));
  s.backoff_ms = 2 + static_cast<int>(rng.next_below(9));

  // QoS: a third of the scenarios run two clients (molding + backfilling
  // light up), a quarter run the seed FIFO discipline, a quarter bound the
  // per-client queue so admission rejections happen under bursts.
  s.clients = rng.next_below(3) == 0 ? 2 : 1;
  s.qos_fair = rng.next_below(4) != 0;
  s.head_bypass = 2 + static_cast<int>(rng.next_below(7));
  if (rng.next_below(4) == 0) {
    s.max_queue = 1 + static_cast<int>(rng.next_below(4));
  }

  // Workload mix.
  const int request_count = 1 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < request_count; ++i) {
    DstRequest r;
    r.width = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.workers) + 1));
    const int effective = r.width > 0 ? r.width : s.workers;
    r.partials = 1 + static_cast<int>(rng.next_below(4));
    r.payload = 16 + static_cast<int>(rng.next_below(113));
    r.dms_items = static_cast<int>(rng.next_below(7));
    r.first_item = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.item_count)));
    r.barrier = rng.next_below(3) == 0;
    if (rng.next_below(4) == 0) {
      r.fail_rank = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(effective)));
    }
    r.submit_at_ms = static_cast<int>(rng.next_below(101));
    r.item_sleep_us = static_cast<int>(rng.next_below(2001));
    r.client = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.clients)));
    if (rng.next_below(5) == 0) {
      // Cancels land anywhere from "still queued" to "mid-flight"; the
      // terminal oracle requires an answer either way.
      r.cancel_at_ms = r.submit_at_ms + static_cast<int>(rng.next_below(120));
    }
    s.requests.push_back(r);
  }

  // Result cache: a third of the scenarios memoize. Duplicate an earlier
  // request at a later submit time so warm hits actually occur (the key is
  // content-addressed — only an identical workload can hit), and
  // occasionally bump the dataset version mid-run so invalidation and the
  // no-stale oracle light up. Drawn after everything above so the
  // pre-existing part of a seed's scenario is unchanged.
  if (rng.next_below(3) == 0) {
    s.result_cache_kb = 16 + static_cast<int>(rng.next_below(49));
    const int repeats = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < repeats; ++i) {
      DstRequest dup = s.requests[rng.next_below(s.requests.size())];
      // Only clean successes are memoized, so strip the failure/cancel
      // injections to make the duplicate actually hit-eligible.
      dup.fail_rank = -1;
      dup.cancel_at_ms = -1;
      dup.submit_at_ms = 150 + static_cast<int>(rng.next_below(251));
      s.requests.push_back(dup);
    }
    if (rng.next_below(3) == 0) {
      s.bumps.push_back(100 + static_cast<int>(rng.next_below(201)));
    }
  }

  // Sharded DMS: a third of the multi-worker scenarios route their DMS
  // traffic over the shard map (peer fetches, pushes, replica failover when
  // a kill lands on an owner). Drawn after everything above so every
  // pre-shard seed keeps its exact scenario.
  if (s.workers >= 2 && rng.next_below(3) == 0) {
    s.shards = s.workers;
    s.repl = 1 + static_cast<int>(rng.next_below(2));
  }
  return s;
}

namespace {

bool violates(const Scenario& s, ScenarioResult& out) {
  out = run_scenario(s);
  return !out.ok();
}

/// Applies one round of every simplification pass. Returns true if any
/// candidate was accepted (so the caller loops to a fixpoint).
bool shrink_round(Scenario& best, ScenarioResult& failure, int max_attempts, int& attempts,
                  int& accepted) {
  bool improved = false;
  auto consider = [&](const Scenario& candidate) {
    if (attempts >= max_attempts) {
      return;
    }
    ++attempts;
    ScenarioResult result;
    if (violates(candidate, result)) {
      best = candidate;
      failure = std::move(result);
      ++accepted;
      improved = true;
    }
  };

  // Structural passes first: dropping whole requests / kills removes the
  // most complexity per run.
  for (std::size_t i = 0; best.requests.size() > 1 && i < best.requests.size(); ++i) {
    Scenario candidate = best;
    candidate.requests.erase(candidate.requests.begin() + static_cast<std::ptrdiff_t>(i));
    consider(candidate);
  }
  for (std::size_t i = 0; i < best.kills.size(); ++i) {
    Scenario candidate = best;
    candidate.kills.erase(candidate.kills.begin() + static_cast<std::ptrdiff_t>(i));
    consider(candidate);
  }

  // Fault-rate passes.
  for (double Scenario::*rate :
       {&Scenario::drop_rate, &Scenario::duplicate_rate, &Scenario::delay_rate}) {
    if (best.*rate > 0.0) {
      Scenario candidate = best;
      candidate.*rate = 0.0;
      consider(candidate);
    }
  }

  // Per-request workload passes.
  for (std::size_t i = 0; i < best.requests.size(); ++i) {
    const DstRequest& r = best.requests[i];
    auto with = [&](auto mutate) {
      Scenario candidate = best;
      mutate(candidate.requests[i]);
      consider(candidate);
    };
    if (r.partials > 1) {
      with([](DstRequest& q) { q.partials = std::max(1, q.partials / 2); });
    }
    if (r.dms_items > 0) {
      with([](DstRequest& q) { q.dms_items = 0; });
    }
    if (r.payload > 16) {
      with([](DstRequest& q) { q.payload = 16; });
    }
    if (r.barrier) {
      with([](DstRequest& q) { q.barrier = false; });
    }
    if (r.fail_rank >= 0) {
      with([](DstRequest& q) { q.fail_rank = -1; });
    }
    if (r.submit_at_ms > 0) {
      with([](DstRequest& q) { q.submit_at_ms = 0; });
    }
    if (r.item_sleep_us > 0) {
      with([](DstRequest& q) { q.item_sleep_us = 0; });
    }
    if (r.width > 1) {
      with([](DstRequest& q) { q.width = 1; });
    }
    if (r.cancel_at_ms >= 0) {
      with([](DstRequest& q) { q.cancel_at_ms = -1; });
    }
    if (r.client > 0) {
      with([](DstRequest& q) { q.client = 0; });
    }
  }

  // Stack simplification passes.
  if (best.clients > 1) {
    Scenario candidate = best;
    candidate.clients = 1;
    for (auto& request : candidate.requests) {
      request.client = 0;
    }
    consider(candidate);
  }
  if (best.max_queue > 0) {
    Scenario candidate = best;
    candidate.max_queue = 0;
    consider(candidate);
  }
  if (!best.qos_fair) {
    // Move toward the default discipline; a failure specific to kFifo
    // survives this pass (the candidate passes and is not accepted).
    Scenario candidate = best;
    candidate.qos_fair = true;
    consider(candidate);
  }
  if (best.pipeline_window > 0 || best.pipeline_threads > 0) {
    Scenario candidate = best;
    candidate.pipeline_window = 0;
    candidate.pipeline_threads = 0;
    consider(candidate);
  }
  if (best.result_cache_kb > 0) {
    Scenario candidate = best;
    candidate.result_cache_kb = 0;
    candidate.bumps.clear();
    consider(candidate);
  }
  if (!best.bumps.empty()) {
    Scenario candidate = best;
    candidate.bumps.clear();
    consider(candidate);
  }
  if (best.shards > 1) {
    // Toward the legacy central path; a sharding-specific failure survives
    // this pass, a generic one sheds the whole peer-transfer machinery.
    Scenario candidate = best;
    candidate.shards = 1;
    candidate.repl = 1;
    consider(candidate);
  }
  if (best.repl > 1) {
    Scenario candidate = best;
    candidate.repl = 1;
    consider(candidate);
  }
  if (best.l2) {
    Scenario candidate = best;
    candidate.l2 = false;
    consider(candidate);
  }
  if (best.prefetcher != "null") {
    Scenario candidate = best;
    candidate.prefetcher = "null";
    consider(candidate);
  }
  if (best.workers > 1) {
    const int narrower = best.workers - 1;
    const bool widths_fit = std::all_of(
        best.requests.begin(), best.requests.end(),
        [narrower](const DstRequest& r) { return r.width <= narrower; });
    const bool kills_fit =
        std::all_of(best.kills.begin(), best.kills.end(),
                    [narrower](const std::pair<int, int>& k) { return k.second <= narrower; });
    if (widths_fit && kills_fit) {
      Scenario candidate = best;
      candidate.workers = narrower;
      consider(candidate);
    }
  }
  return improved;
}

}  // namespace

ShrinkResult shrink_scenario(const Scenario& scenario, int max_attempts) {
  ShrinkResult result;
  result.minimal = scenario;
  if (!violates(scenario, result.failure)) {
    // Nothing to shrink; report the passing run as-is.
    ++result.attempts;
    return result;
  }
  ++result.attempts;
  while (result.attempts < max_attempts &&
         shrink_round(result.minimal, result.failure, max_attempts, result.attempts,
                      result.accepted)) {
  }
  return result;
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  for (int i = 0; i < options.count; ++i) {
    const std::uint64_t seed = options.first_seed + static_cast<std::uint64_t>(i);
    const Scenario scenario = generate_scenario(seed);
    ScenarioResult result = run_scenario(scenario);
    ++report.scenarios_run;
    report.total_transport_events += result.transport_events;

    if (options.verify_every > 0 && i % options.verify_every == 0) {
      ++report.determinism_checks;
      const ScenarioResult replay = run_scenario(scenario);
      if (replay.trajectory_hash != result.trajectory_hash ||
          replay.transport_events != result.transport_events) {
        report.nondeterministic_seeds.push_back(seed);
      }
    }

    if (!result.ok()) {
      FuzzFailure failure;
      failure.seed = seed;
      failure.violations = result.violations;
      failure.scenario = scenario.to_string();
      if (options.shrink_failures) {
        failure.shrunk = shrink_scenario(scenario).minimal.to_string();
      }
      report.failures.push_back(std::move(failure));
    }
  }
  return report;
}

}  // namespace vira::sim
