#pragma once

/// \file channel.hpp
/// Unbounded message channel between simulation processes.
///
/// push() never blocks (virtual transports model latency/bandwidth with
/// explicit delays before pushing); pop() suspends the consumer until a
/// message is available. Items are handed to waiting consumers at push
/// time (direct handoff), so a later ready-path pop can never steal an item
/// that was already granted — consumers are served strictly FIFO. close()
/// releases all blocked consumers with std::nullopt, the end-of-stream
/// marker.

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"

namespace vira::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  std::size_t size() const noexcept { return items_.size(); }
  bool closed() const noexcept { return closed_; }

  /// Enqueues an item. If a consumer is waiting the item is handed to it
  /// directly and the consumer is scheduled.
  void push(T item) {
    if (closed_) {
      return;
    }
    if (!consumers_.empty()) {
      Waiter waiter = consumers_.front();
      consumers_.pop_front();
      waiter.slot->emplace(std::move(item));
      engine_.schedule_now(waiter.handle);
      return;
    }
    items_.push_back(std::move(item));
  }

  /// Closes the channel: already-queued items still drain; blocked and
  /// future consumers receive std::nullopt.
  void close() {
    closed_ = true;
    while (!consumers_.empty()) {
      Waiter waiter = consumers_.front();
      consumers_.pop_front();
      engine_.schedule_now(waiter.handle);  // slot stays empty => nullopt
    }
  }

  struct PopAwaiter {
    Channel& channel;
    std::optional<T> slot;

    bool await_ready() {
      if (!channel.items_.empty()) {
        slot.emplace(std::move(channel.items_.front()));
        channel.items_.pop_front();
        return true;
      }
      return channel.closed_;
    }

    void await_suspend(std::coroutine_handle<> h) {
      channel.consumers_.push_back(Waiter{h, &slot});
    }

    std::optional<T> await_resume() { return std::move(slot); }
  };

  /// Suspends until an item (or close) arrives. Returns nullopt only when
  /// the channel is closed and no item was granted.
  PopAwaiter pop() { return PopAwaiter{*this, std::nullopt}; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  Engine& engine_;
  std::deque<T> items_;
  std::deque<Waiter> consumers_;
  bool closed_ = false;
};

}  // namespace vira::sim
