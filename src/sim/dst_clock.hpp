#pragma once

/// \file dst_clock.hpp
/// Cooperative virtual clock for deterministic simulation testing (DST).
///
/// The real scheduler / worker / DMS stack is multithreaded; what makes it
/// nondeterministic is the OS scheduler and the wall clock. VirtualClock
/// removes both: it implements util::Clock with a *token machine* — exactly
/// one participant thread holds the run token at any instant, every
/// blocking point in the product (clock_sleep, transport waits) releases
/// the token, and virtual time advances only when nothing is runnable, by
/// jumping to the earliest pending deadline or timer. The schedule is a
/// pure function of the participants' behavior, so a seeded scenario
/// replays bit-identically — and months of virtual heartbeat/death-timeout
/// time elapse in milliseconds of real time.
///
/// Thread model:
///   * The driver thread enters via register_driver() and initially holds
///     the token.
///   * Product threads are announced by their *spawning* thread
///     (Clock::announce_thread) before the std::thread exists, which
///     reserves their scheduling slot at a deterministic point; the spawned
///     body brackets itself with thread_begin()/thread_end().
///   * join_thread() lets a participant leave the machine (token released)
///     while it really blocks in std::thread::join, then re-enters. Only
///     teardown paths join, after the trajectory hash is finalized, so the
///     re-entry's racing with the OS does not affect measured determinism.
///
/// tsan note: every token hand-off goes through one mutex, so consecutive
/// token holders are linked by a release/acquire chain — the serialized
/// schedule is also a data-race-free schedule.

#include <chrono>
#include <condition_variable>
#include <iosfwd>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/clock.hpp"

namespace vira::sim {

class VirtualClock final : public util::Clock {
 public:
  using Nanos = std::int64_t;

  /// One cooperating thread. Owned by the clock; pointers stay valid until
  /// the clock is destroyed (threads are joined before that).
  struct Participant {
    explicit Participant(std::string participant_name) : name(std::move(participant_name)) {}
    std::string name;
    std::condition_variable cv;
    bool granted = false;   ///< token offered; predicate for cv waits
    bool waiting = false;   ///< parked in waiting_ with a deadline
    bool signaled = false;  ///< woken by wake_locked (vs deadline expiry)
    bool finished = false;
    Nanos deadline = 0;
    std::uint64_t wait_seq = 0;  ///< tie-break for equal deadlines (FIFO)
  };

  VirtualClock() = default;
  ~VirtualClock() override = default;
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  /// --- util::Clock ---------------------------------------------------------
  std::chrono::steady_clock::time_point now() override {
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(now_ns_.load(std::memory_order_relaxed)));
  }
  void sleep_for(std::chrono::nanoseconds duration) override;
  void announce_thread(const std::string& name) override;
  void thread_begin(const std::string& name) override;
  void thread_end() override;
  void join_thread(std::thread& thread) override;

  /// --- driver --------------------------------------------------------------
  /// Turns the calling thread into a participant that immediately holds the
  /// token. Call once, before any product thread is announced.
  void register_driver(const std::string& name = "driver");
  /// Ends the driver's participation (same as thread_end()).
  void unregister_driver();

  /// --- machine API for VirtualTransport ------------------------------------
  /// All _locked members require the lock returned by acquire().
  std::unique_lock<std::mutex> acquire() { return std::unique_lock<std::mutex>(mutex_); }
  Nanos now_ns() const { return now_ns_.load(std::memory_order_relaxed); }
  /// The calling thread's participant (nullptr outside the machine).
  Participant* self() const { return tls_self_; }
  /// Runs `fn` (under the machine lock) when virtual time reaches `due`.
  /// Timers at the same instant fire in registration order, before any
  /// deadline-expired participant resumes.
  void add_timer_locked(Nanos due, std::function<void()> fn);
  /// Parks the calling participant until wake_locked() or `deadline_ns`,
  /// releasing the token meanwhile; returns with the token re-held.
  void wait_for_signal_locked(std::unique_lock<std::mutex>& lock, Nanos deadline_ns);
  /// Moves a parked participant to the ready queue (FIFO). No-op if it is
  /// not currently parked.
  void wake_locked(Participant* p);

  /// Token hand-offs so far (diagnostic; deterministic per scenario).
  std::uint64_t switches() const { return switches_.load(std::memory_order_relaxed); }

  /// Dumps participant/timer state to `out` — the post-mortem for a machine
  /// that stopped making progress. Safe to call from a non-participant
  /// thread (takes the machine lock; the token holder is only ever blocked
  /// on product-level mutexes, never this one, while it runs).
  void dump_state(std::ostream& out);

 private:
  struct Timer {
    Nanos due;
    std::uint64_t seq;
    std::function<void()> fn;
  };

  void grant_locked(Participant* p);
  void release_token_locked();
  void block_self_locked(std::unique_lock<std::mutex>& lock, Nanos deadline_ns);
  /// Picks the next runnable participant, advancing virtual time if needed.
  void schedule_next_locked();

  static thread_local Participant* tls_self_;

  mutable std::mutex mutex_;
  std::atomic<Nanos> now_ns_{0};
  bool token_held_ = false;
  std::uint64_t next_seq_ = 0;
  std::atomic<std::uint64_t> switches_{0};

  /// Runnable participants, FIFO. The front is granted next.
  std::deque<Participant*> ready_;
  /// Parked participants with deadlines (unordered; scanned on advance).
  std::vector<Participant*> waiting_;
  /// Min-heap by (due, seq) via heap algorithms on a vector.
  std::vector<Timer> timers_;

  /// Ordered by name so per-scenario iteration (if ever needed) is
  /// deterministic; owns the Participant storage.
  std::map<std::string, std::unique_ptr<Participant>> participants_;
};

}  // namespace vira::sim
