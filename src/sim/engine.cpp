#include "sim/engine.hpp"

namespace vira::sim {

Engine::~Engine() {
  // Unprocessed events reference coroutine frames owned by roots_ (or by
  // parent frames, which are transitively owned by roots_); destroying the
  // roots tears everything down.
  while (!events_.empty()) {
    events_.pop();
  }
  for (auto& root : roots_) {
    if (root.handle) {
      root.handle.destroy();
    }
  }
}

void Engine::step(const Event& event) {
  now_ = event.time;
  ++events_processed_;
  event.handle.resume();
}

void Engine::check_errors() {
  for (const auto& root : roots_) {
    if (root.state->error) {
      std::rethrow_exception(root.state->error);
    }
  }
}

void Engine::run() {
  while (!events_.empty()) {
    const Event event = events_.top();
    events_.pop();
    step(event);
  }
  check_errors();
}

bool Engine::run_until(double t_end) {
  while (!events_.empty() && events_.top().time <= t_end) {
    const Event event = events_.top();
    events_.pop();
    step(event);
  }
  check_errors();
  if (events_.empty()) {
    return false;
  }
  now_ = t_end;
  return true;
}

}  // namespace vira::sim
