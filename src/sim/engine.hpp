#pragma once

/// \file engine.hpp
/// Deterministic discrete-event simulation engine on C++20 coroutines.
///
/// Why this exists: the paper's measurements were taken on a 24-CPU
/// SUN Fire 6800. This reproduction runs on arbitrary (possibly single-core)
/// hosts, so wall-clock scaling curves are physically unobtainable. Instead,
/// the benchmark harness replays the *real* Viracocha policies (block
/// scheduling, DMS caching/prefetching, streaming) inside this simulator,
/// with task costs measured from real runs of the real extraction
/// algorithms. Processes are coroutines; `co_await engine.delay(dt)`
/// advances virtual time, `Resource` models contended servers (CPUs, the
/// disk, the client uplink), and `Channel<T>` passes messages between
/// processes in causal order.
///
/// Determinism: events at equal timestamps are processed in scheduling
/// order (FIFO tie-break), so a given program always produces the same
/// trajectory.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace vira::sim {

class Engine;

namespace detail {

/// Shared completion state for join() support.
struct ProcessState {
  bool done = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> joiners;
};

struct PromiseBase {
  Engine* engine = nullptr;
  std::coroutine_handle<> continuation;  // parent awaiting this task, if any
  std::shared_ptr<ProcessState> state = std::make_shared<ProcessState>();

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { state->error = std::current_exception(); }
};

}  // namespace detail

/// A simulation coroutine. `Task<T>` is created suspended; it runs either
/// when spawned onto an Engine (top-level process) or when awaited by
/// another task (subroutine call in virtual time).
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return handle_ != nullptr; }
  Handle handle() const noexcept { return handle_; }
  Handle release() noexcept { return std::exchange(handle_, nullptr); }

  /// Awaiting a task starts it and suspends the awaiter until it finishes;
  /// the task's return value becomes the await result.
  auto operator co_await() && noexcept;

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_ = nullptr;
};

/// Join handle for spawned top-level processes.
class ProcessHandle {
 public:
  ProcessHandle() = default;
  explicit ProcessHandle(std::shared_ptr<detail::ProcessState> state, Engine* engine)
      : state_(std::move(state)), engine_(engine) {}

  bool valid() const noexcept { return state_ != nullptr; }
  bool done() const noexcept { return state_ && state_->done; }

  /// Awaitable: suspends the awaiting process until this one completes.
  auto join() noexcept;

 private:
  std::shared_ptr<detail::ProcessState> state_;
  Engine* engine_ = nullptr;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  double now() const noexcept { return now_; }

  /// Registers a top-level process; it starts at the current virtual time
  /// once run() proceeds.
  template <typename T>
  ProcessHandle spawn(Task<T> task, std::string name = {});

  /// Runs until no events remain. Throws the first unhandled process
  /// exception (after draining is stopped).
  void run();

  /// Runs until virtual time would exceed `t_end` (events at exactly t_end
  /// are processed). Returns true if events remain.
  bool run_until(double t_end);

  /// Number of events processed so far (diagnostics, determinism tests).
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// --- awaitable factories ------------------------------------------------
  struct DelayAwaiter {
    Engine& engine;
    double dt;
    bool await_ready() const noexcept { return dt <= 0.0; }
    void await_suspend(std::coroutine_handle<> h) { engine.schedule(engine.now_ + dt, h); }
    void await_resume() const noexcept {}
  };

  /// Suspends the caller for `dt` seconds of virtual time.
  DelayAwaiter delay(double dt) { return DelayAwaiter{*this, dt}; }

  /// --- scheduling (used by awaitables; not for end users) -----------------
  void schedule(double time, std::coroutine_handle<> h) {
    if (time < now_) {
      throw std::logic_error("sim::Engine: scheduling into the past");
    }
    events_.push(Event{time, next_seq_++, h});
  }
  void schedule_now(std::coroutine_handle<> h) { schedule(now_, h); }

  void notify_done(detail::ProcessState& state) {
    state.done = true;
    for (auto joiner : state.joiners) {
      schedule_now(joiner);
    }
    state.joiners.clear();
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  struct RootProcess {
    std::coroutine_handle<> handle;
    std::shared_ptr<detail::ProcessState> state;
    std::string name;
  };

  void step(const Event& event);
  void check_errors();

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<RootProcess> roots_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

/// ---------------------------------------------------------------------------
/// promise types
/// ---------------------------------------------------------------------------

namespace detail {

template <typename T>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  void await_suspend(std::coroutine_handle<Promise> h) noexcept {
    auto& promise = h.promise();
    if (promise.engine != nullptr) {
      promise.engine->notify_done(*promise.state);
      if (promise.continuation) {
        promise.engine->schedule_now(promise.continuation);
      }
    }
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T>
struct Task<T>::promise_type : detail::PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object() { return Task<T>(Handle::from_promise(*this)); }
  detail::FinalAwaiter<T> final_suspend() noexcept { return {}; }
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Task<void>::promise_type : detail::PromiseBase {
  Task<void> get_return_object() { return Task<void>(Handle::from_promise(*this)); }
  detail::FinalAwaiter<void> final_suspend() noexcept { return {}; }
  void return_void() {}
};

namespace detail {

/// Awaiter used by `co_await std::move(task)`.
template <typename T>
struct TaskAwaiter {
  typename Task<T>::Handle handle;

  bool await_ready() const noexcept { return false; }

  template <typename ParentPromise>
  void await_suspend(std::coroutine_handle<ParentPromise> parent) {
    Engine* engine = parent.promise().engine;
    handle.promise().engine = engine;
    handle.promise().continuation = parent;
    engine->schedule_now(handle);
  }

  T await_resume() {
    auto& promise = handle.promise();
    if (promise.state->error) {
      std::rethrow_exception(promise.state->error);
    }
    if constexpr (!std::is_void_v<T>) {
      return std::move(*promise.value);
    }
  }
};

}  // namespace detail

template <typename T>
auto Task<T>::operator co_await() && noexcept {
  return detail::TaskAwaiter<T>{handle_};
}

/// ---------------------------------------------------------------------------
/// spawn / join
/// ---------------------------------------------------------------------------

template <typename T>
ProcessHandle Engine::spawn(Task<T> task, std::string name) {
  auto handle = task.release();
  if (!handle) {
    throw std::invalid_argument("sim::Engine::spawn: empty task");
  }
  handle.promise().engine = this;
  auto state = handle.promise().state;
  roots_.push_back(RootProcess{handle, state, std::move(name)});
  schedule_now(handle);
  return ProcessHandle(state, this);
}

namespace detail {

struct JoinAwaiter {
  std::shared_ptr<ProcessState> state;
  Engine* engine;

  bool await_ready() const noexcept { return state == nullptr || state->done; }
  void await_suspend(std::coroutine_handle<> h) { state->joiners.push_back(h); }
  void await_resume() const {
    if (state && state->error) {
      std::rethrow_exception(state->error);
    }
  }
};

}  // namespace detail

inline auto ProcessHandle::join() noexcept { return detail::JoinAwaiter{state_, engine_}; }

}  // namespace vira::sim
