#include "sim/dst_clock.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace vira::sim {

thread_local VirtualClock::Participant* VirtualClock::tls_self_ = nullptr;

namespace {
bool timer_later(const VirtualClock::Nanos due_a, const std::uint64_t seq_a,
                 const VirtualClock::Nanos due_b, const std::uint64_t seq_b) {
  return due_a != due_b ? due_a > due_b : seq_a > seq_b;
}
}  // namespace

void VirtualClock::grant_locked(Participant* p) {
  token_held_ = true;
  p->granted = true;
  switches_.fetch_add(1, std::memory_order_relaxed);
  p->cv.notify_one();
}

void VirtualClock::release_token_locked() {
  token_held_ = false;
  schedule_next_locked();
}

void VirtualClock::schedule_next_locked() {
  if (token_held_) {
    return;
  }
  while (true) {
    if (!ready_.empty()) {
      Participant* next = ready_.front();
      ready_.pop_front();
      grant_locked(next);
      return;
    }
    // Nothing runnable: advance virtual time to the earliest pending event
    // (timer or parked deadline). If there is none the machine idles — the
    // remaining participants are outside (join_thread) or finished.
    bool have_due = false;
    Nanos due = 0;
    if (!timers_.empty()) {
      due = timers_.front().due;
      have_due = true;
    }
    for (const Participant* p : waiting_) {
      if (!have_due || p->deadline < due) {
        due = p->deadline;
        have_due = true;
      }
    }
    if (!have_due) {
      return;
    }
    if (due > now_ns_.load(std::memory_order_relaxed)) {
      now_ns_.store(due, std::memory_order_relaxed);
    }
    const Nanos now = now_ns_.load(std::memory_order_relaxed);
    // Fire due timers first (message deliveries before timeout wake-ups at
    // the same instant), in (due, seq) registration order.
    while (!timers_.empty() && timers_.front().due <= now) {
      std::pop_heap(timers_.begin(), timers_.end(), [](const Timer& a, const Timer& b) {
        return timer_later(a.due, a.seq, b.due, b.seq);
      });
      Timer fired = std::move(timers_.back());
      timers_.pop_back();
      fired.fn();
    }
    // Then release parked participants whose deadlines passed, ordered by
    // (deadline, wait_seq) so equal deadlines resume in park order.
    std::vector<Participant*> due_waiters;
    for (Participant* p : waiting_) {
      if (p->deadline <= now) {
        due_waiters.push_back(p);
      }
    }
    std::sort(due_waiters.begin(), due_waiters.end(), [](const Participant* a,
                                                         const Participant* b) {
      return a->deadline != b->deadline ? a->deadline < b->deadline : a->wait_seq < b->wait_seq;
    });
    for (Participant* p : due_waiters) {
      waiting_.erase(std::remove(waiting_.begin(), waiting_.end(), p), waiting_.end());
      p->waiting = false;
      ready_.push_back(p);
    }
    // Loop: a timer may have woken nobody; keep advancing until someone is
    // runnable or no events remain.
  }
}

void VirtualClock::block_self_locked(std::unique_lock<std::mutex>& lock, Nanos deadline_ns) {
  Participant* self = tls_self_;
  if (self == nullptr) {
    throw std::logic_error("VirtualClock: blocking call from a non-participant thread");
  }
  self->waiting = true;
  self->signaled = false;
  self->deadline = deadline_ns;
  self->wait_seq = next_seq_++;
  waiting_.push_back(self);
  release_token_locked();
  self->cv.wait(lock, [self] { return self->granted; });
  self->granted = false;
}

void VirtualClock::sleep_for(std::chrono::nanoseconds duration) {
  auto lock = acquire();
  const Nanos delta = std::max<Nanos>(duration.count(), 0);
  block_self_locked(lock, now_ns_.load(std::memory_order_relaxed) + delta);
}

void VirtualClock::wait_for_signal_locked(std::unique_lock<std::mutex>& lock,
                                          Nanos deadline_ns) {
  block_self_locked(lock, deadline_ns);
}

void VirtualClock::wake_locked(Participant* p) {
  if (p == nullptr || !p->waiting) {
    return;
  }
  waiting_.erase(std::remove(waiting_.begin(), waiting_.end(), p), waiting_.end());
  p->waiting = false;
  p->signaled = true;
  ready_.push_back(p);
}

void VirtualClock::add_timer_locked(Nanos due, std::function<void()> fn) {
  timers_.push_back(Timer{due, next_seq_++, std::move(fn)});
  std::push_heap(timers_.begin(), timers_.end(), [](const Timer& a, const Timer& b) {
    return timer_later(a.due, a.seq, b.due, b.seq);
  });
}

void VirtualClock::announce_thread(const std::string& name) {
  auto lock = acquire();
  auto [it, inserted] = participants_.emplace(name, std::make_unique<Participant>(name));
  if (!inserted) {
    throw std::logic_error("VirtualClock: duplicate participant name '" + name + "'");
  }
  // The announcing thread holds the token, so the new participant simply
  // queues; it is granted (in announcement order) once the spawner blocks.
  ready_.push_back(it->second.get());
}

void VirtualClock::thread_begin(const std::string& name) {
  auto lock = acquire();
  auto it = participants_.find(name);
  if (it == participants_.end()) {
    throw std::logic_error("VirtualClock: thread_begin without announce ('" + name + "')");
  }
  Participant* self = it->second.get();
  tls_self_ = self;
  // The slot was queued by announce_thread; wait for the machine to grant
  // it. The predicate covers the grant-before-wait race (notify is lost,
  // the flag is not).
  self->cv.wait(lock, [self] { return self->granted; });
  self->granted = false;
}

void VirtualClock::thread_end() {
  auto lock = acquire();
  Participant* self = tls_self_;
  if (self == nullptr) {
    return;
  }
  self->finished = true;
  tls_self_ = nullptr;
  release_token_locked();
}

void VirtualClock::join_thread(std::thread& thread) {
  Participant* self = tls_self_;
  if (self == nullptr) {
    // Not inside the machine (e.g. a real-mode caller holding a pointer to
    // this clock by mistake); behave like the base class.
    if (thread.joinable()) {
      thread.join();
    }
    return;
  }
  {
    auto lock = acquire();
    release_token_locked();
  }
  // Really block: the joined thread needs the machine to schedule it to
  // completion, which it can now do without us.
  if (thread.joinable()) {
    thread.join();
  }
  {
    auto lock = acquire();
    ready_.push_back(self);
    if (!token_held_) {
      schedule_next_locked();
    }
    self->cv.wait(lock, [self] { return self->granted; });
    self->granted = false;
  }
}

void VirtualClock::dump_state(std::ostream& out) {
  auto lock = acquire();
  out << "VirtualClock: now=" << now_ns_.load() / 1000000 << "ms token_held=" << token_held_
      << " switches=" << switches_.load() << " timers=" << timers_.size() << "\n";
  for (const auto& [name, p] : participants_) {
    out << "  " << name << ": ";
    if (p->finished) {
      out << "finished";
    } else if (p->waiting) {
      out << "parked deadline=" << p->deadline / 1000000 << "ms";
    } else if (std::find(ready_.begin(), ready_.end(), p.get()) != ready_.end()) {
      out << "ready";
    } else {
      out << "running-or-outside";  // token holder, or really blocked in join
    }
    out << "\n";
  }
}

void VirtualClock::register_driver(const std::string& name) {
  auto lock = acquire();
  if (token_held_ || !participants_.empty()) {
    throw std::logic_error("VirtualClock: register_driver on a running machine");
  }
  auto [it, inserted] = participants_.emplace(name, std::make_unique<Participant>(name));
  (void)inserted;
  tls_self_ = it->second.get();
  token_held_ = true;  // the driver starts as the running participant
}

void VirtualClock::unregister_driver() { thread_end(); }

}  // namespace vira::sim
