#pragma once

/// \file dst_transport.hpp
/// Virtual-time rank transport for deterministic simulation testing.
///
/// Implements comm::Transport on top of sim::VirtualClock: mailboxes and
/// blocked receivers live under the machine lock, receive timeouts are
/// virtual deadlines, and delayed deliveries are virtual timers — so the
/// *real* scheduler/worker/DMS code runs against it unmodified while the
/// whole message schedule is a deterministic function of the seed.
///
/// Faults reuse comm::FaultInjectingTransport's vocabulary and decision
/// order exactly (dead-suppress → drop → duplicate → delay, delays uniform
/// in [1, max_delay] ms) so a fault schedule that reproduces a bug here
/// translates directly to the real-time fault harness. Rank kills are part
/// of the scenario: scheduled at construction as virtual timers instead of
/// being invoked from outside.
///
/// Every delivery/drop/kill event folds into an FNV-1a trajectory hash
/// (virtual time, source, dest, tag, payload bytes). Two runs of the same
/// scenario must produce the same hash — the fuzzer's determinism check.

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "comm/fault_transport.hpp"
#include "comm/transport.hpp"
#include "sim/dst_clock.hpp"
#include "util/rng.hpp"

namespace vira::sim {

class VirtualTransport final : public comm::Transport {
 public:
  struct Config {
    int size = 2;
    comm::FaultInjectionConfig faults;  ///< seed + drop/duplicate/delay rates
    /// (virtual time, rank) crash schedule; suppression is bidirectional
    /// and irreversible, as in FaultInjectingTransport::kill_rank.
    std::vector<std::pair<std::chrono::milliseconds, int>> kills;
  };

  VirtualTransport(std::shared_ptr<VirtualClock> clock, Config config);

  int size() const override { return config_.size; }
  void send(int dest, comm::Message msg) override;
  std::optional<comm::Message> recv(int self, std::chrono::milliseconds timeout) override;
  void shutdown() override;
  bool is_shut_down() const override;

  comm::FaultInjectionStats stats() const;
  std::size_t dead_count() const;

  /// FNV-1a over all transport events so far. Read at a quiescent point
  /// (driver holding the token) for a stable per-scenario value.
  std::uint64_t trajectory_hash() const;
  std::uint64_t event_count() const;

 private:
  bool faults_possible() const {
    return config_.faults.drop_rate > 0.0 || config_.faults.duplicate_rate > 0.0 ||
           config_.faults.delay_rate > 0.0;
  }
  void deliver_locked(int dest, comm::Message msg);
  void record_locked(char kind, int a, int b, int tag, const util::ByteBuffer& payload);

  std::shared_ptr<VirtualClock> clock_;
  Config config_;

  /// All state below is guarded by the clock's machine lock.
  util::Rng rng_;
  std::vector<std::deque<comm::Message>> mailboxes_;
  /// Blocked receivers per rank, FIFO (a rank may have several receiving
  /// threads: worker service loop + heartbeat).
  std::vector<std::deque<VirtualClock::Participant*>> waiters_;
  std::set<int> dead_;
  bool down_ = false;
  comm::FaultInjectionStats stats_;
  std::uint64_t hash_ = 14695981039346656037ull;  ///< FNV-1a offset basis
  std::uint64_t events_ = 0;
};

}  // namespace vira::sim
