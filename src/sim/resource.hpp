#pragma once

/// \file resource.hpp
/// Contended resources for the cluster model.
///
/// A Resource has integer capacity (e.g. 24 CPUs, 1 disk head, 1 client
/// uplink). Processes `co_await resource.acquire()` and must `release()`
/// afterwards (or use the RAII `Lease` from `acquire_scoped`). Waiters are
/// served FIFO, which keeps the simulation deterministic and mirrors the
/// paper's first-come-first-served scheduler queue.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/engine.hpp"

namespace vira::sim {

class Resource {
 public:
  Resource(Engine& engine, std::int64_t capacity, std::string name = {})
      : engine_(engine), capacity_(capacity), available_(capacity), name_(std::move(name)) {
    if (capacity <= 0) {
      throw std::invalid_argument("sim::Resource: capacity must be positive");
    }
  }

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  std::int64_t capacity() const noexcept { return capacity_; }
  std::int64_t available() const noexcept { return available_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }
  const std::string& name() const noexcept { return name_; }

  struct AcquireAwaiter {
    Resource& resource;
    std::int64_t units;

    bool await_ready() const noexcept { return false; }

    /// Returns false (continue without suspending) when the grant is
    /// immediate; units are reserved exactly once, either here or in
    /// wake_waiters().
    bool await_suspend(std::coroutine_handle<> h) {
      if (resource.waiters_.empty() && resource.available_ >= units) {
        resource.available_ -= units;
        return false;
      }
      resource.waiters_.push_back({h, units});
      return true;
    }

    void await_resume() const noexcept {}
  };

  /// Acquire `units` capacity; FIFO among waiters. `units` must not exceed
  /// total capacity (would deadlock forever otherwise).
  AcquireAwaiter acquire(std::int64_t units = 1) {
    if (units > capacity_) {
      throw std::invalid_argument("sim::Resource::acquire: units exceed capacity");
    }
    return AcquireAwaiter{*this, units};
  }

  void release(std::int64_t units = 1) {
    available_ += units;
    if (available_ > capacity_) {
      throw std::logic_error("sim::Resource::release: over-release");
    }
    wake_waiters();
  }

  /// RAII holder; releases on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Resource* resource, std::int64_t units) : resource_(resource), units_(units) {}
    Lease(Lease&& other) noexcept
        : resource_(std::exchange(other.resource_, nullptr)), units_(other.units_) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        reset();
        resource_ = std::exchange(other.resource_, nullptr);
        units_ = other.units_;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { reset(); }

    void reset() {
      if (resource_ != nullptr) {
        resource_->release(units_);
        resource_ = nullptr;
      }
    }

   private:
    Resource* resource_ = nullptr;
    std::int64_t units_ = 0;
  };

  /// Coroutine helper: acquires and wraps into a Lease.
  Task<Lease> acquire_scoped(std::int64_t units = 1) {
    co_await acquire(units);
    co_return Lease(this, units);
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::int64_t units;
  };

  /// Wakes queued waiters in FIFO order while the head's request fits.
  /// Units are reserved here, at grant time, so later ready-path acquirers
  /// cannot overtake a waiter that was already granted.
  void wake_waiters() {
    while (!waiters_.empty() && waiters_.front().units <= available_) {
      const Waiter waiter = waiters_.front();
      waiters_.pop_front();
      available_ -= waiter.units;
      engine_.schedule_now(waiter.handle);
    }
  }

  Engine& engine_;
  std::int64_t capacity_;
  std::int64_t available_;
  std::string name_;
  std::deque<Waiter> waiters_;
};

}  // namespace vira::sim
