#include "grid/field_store.hpp"

#include <algorithm>
#include <new>

namespace vira::grid {

void AlignedFloats::assign(std::size_t n, float fill) {
  const std::size_t padded =
      (n + kFieldPadFloats - 1) / kFieldPadFloats * kFieldPadFloats;
  if (padded != padded_) {
    release();
    if (padded > 0) {
      data_ = static_cast<float*>(
          std::aligned_alloc(kFieldAlignment, padded * sizeof(float)));
      if (data_ == nullptr) {
        throw std::bad_alloc();
      }
    }
    padded_ = padded;
  }
  size_ = n;
  // Alignment contract (DESIGN.md §13): every field array starts on a
  // 64-byte boundary. Violations fail fast in debug builds.
  assert(reinterpret_cast<std::uintptr_t>(data_) % kFieldAlignment == 0);
  std::fill(data_, data_ + size_, fill);
  std::fill(data_ + size_, data_ + padded_, 0.0f);
}

void FieldStore::reset(std::int64_t nodes) {
  nodes_ = nodes;
  names_.clear();
  arrays_.clear();
  index_.clear();
}

FieldId FieldStore::find(std::string_view name) const {
  // Transparent lookup would avoid the temporary string; field counts are
  // tiny and find() is off the hot path now that callers hold FieldIds.
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidFieldId : it->second;
}

FieldId FieldStore::ensure(std::string_view name) {
  if (const FieldId existing = find(name); existing != kInvalidFieldId) {
    return existing;
  }
  const FieldId id = static_cast<FieldId>(arrays_.size());
  names_.emplace_back(name);
  arrays_.emplace_back(static_cast<std::size_t>(nodes_), 0.0f);
  index_.emplace(names_.back(), id);
  return id;
}

std::vector<std::string> FieldStore::sorted_names() const {
  std::vector<std::string> out = names_;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vira::grid
