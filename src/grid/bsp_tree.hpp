#pragma once

/// \file bsp_tree.hpp
/// View-dependent space partitioning over a block's cells.
///
/// The ViewerIso command (paper Sec. 6.3) builds a binary space-partitioning
/// tree per block and traverses it front-to-back with respect to the
/// viewer's position, pruning "branches labeling empty regions" — nodes
/// whose scalar min/max interval does not straddle the iso-value. Because
/// the blocks are logically Cartesian, the tree splits cell *index* ranges
/// (a kd-style BSP); each node carries the world-space bounding box and the
/// scalar interval of its cells.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "grid/structured_block.hpp"

namespace vira::grid {

/// Half-open cell index range [i0,i1) × [j0,j1) × [k0,k1).
struct CellRange {
  int i0 = 0;
  int i1 = 0;
  int j0 = 0;
  int j1 = 0;
  int k0 = 0;
  int k1 = 0;

  std::int64_t cell_count() const {
    return static_cast<std::int64_t>(i1 - i0) * (j1 - j0) * (k1 - k0);
  }
  bool operator==(const CellRange&) const = default;
};

class BspTree {
 public:
  struct BuildParams {
    /// Leaves hold at most this many cells.
    int max_leaf_cells;
  };

  /// Builds over all cells of `block` using node scalar field `field`.
  /// The block must outlive the tree.
  BspTree(const StructuredBlock& block, const std::string& field, BuildParams params = BuildParams{128});

  /// Visits leaves whose scalar interval contains `iso`, front-to-back with
  /// respect to `viewpoint` (closer child first at every inner node).
  void traverse(const Vec3& viewpoint, float iso,
                const std::function<void(const CellRange&)>& visit) const;

  /// Visits matching leaves in build order (no view sorting); used by the
  /// non-view-dependent streamed algorithms and by tests.
  void traverse_unordered(float iso, const std::function<void(const CellRange&)>& visit) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const { return leaf_count_; }
  /// Scalar interval of the root (whole block).
  std::pair<float, float> root_range() const;

 private:
  struct Node {
    CellRange range;
    Aabb bounds;
    float smin = 0.0f;
    float smax = 0.0f;
    std::int32_t left = -1;   // index into nodes_; -1 for leaves
    std::int32_t right = -1;
  };

  std::int32_t build(const CellRange& range, const BuildParams& params);
  void compute_node_data(Node& node) const;
  void traverse_impl(std::int32_t index, const Vec3& viewpoint, float iso,
                     const std::function<void(const CellRange&)>& visit) const;

  const StructuredBlock& block_;
  std::span<const float> field_;
  std::vector<Node> nodes_;
  std::size_t leaf_count_ = 0;
};

}  // namespace vira::grid
