#include "grid/bsp_tree.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vira::grid {

BspTree::BspTree(const StructuredBlock& block, const std::string& field, BuildParams params)
    : block_(block), field_(block.scalar(field)) {
  if (params.max_leaf_cells < 1) {
    throw std::invalid_argument("BspTree: max_leaf_cells must be >= 1");
  }
  const CellRange all{0, block.cells_i(), 0, block.cells_j(), 0, block.cells_k()};
  nodes_.reserve(static_cast<std::size_t>(2 * all.cell_count() / params.max_leaf_cells + 8));
  build(all, params);
}

void BspTree::compute_node_data(Node& node) const {
  // Nodes of the range cover cell corners [i0..i1] × [j0..j1] × [k0..k1].
  float smin = std::numeric_limits<float>::max();
  float smax = std::numeric_limits<float>::lowest();
  Aabb box;
  for (int k = node.range.k0; k <= node.range.k1; ++k) {
    for (int j = node.range.j0; j <= node.range.j1; ++j) {
      for (int i = node.range.i0; i <= node.range.i1; ++i) {
        const auto idx = block_.node_index(i, j, k);
        const float s = field_[idx];
        smin = std::min(smin, s);
        smax = std::max(smax, s);
        box.expand(block_.point(i, j, k));
      }
    }
  }
  node.smin = smin;
  node.smax = smax;
  node.bounds = box;
}

std::int32_t BspTree::build(const CellRange& range, const BuildParams& params) {
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{range, {}, 0.0f, 0.0f, -1, -1});

  const int di = range.i1 - range.i0;
  const int dj = range.j1 - range.j0;
  const int dk = range.k1 - range.k0;

  if (range.cell_count() <= params.max_leaf_cells) {
    compute_node_data(nodes_[index]);
    ++leaf_count_;
    return index;
  }

  // Split the longest index axis at its midpoint.
  CellRange left = range;
  CellRange right = range;
  if (di >= dj && di >= dk) {
    const int mid = range.i0 + di / 2;
    left.i1 = mid;
    right.i0 = mid;
  } else if (dj >= dk) {
    const int mid = range.j0 + dj / 2;
    left.j1 = mid;
    right.j0 = mid;
  } else {
    const int mid = range.k0 + dk / 2;
    left.k1 = mid;
    right.k0 = mid;
  }

  const auto left_index = build(left, params);
  const auto right_index = build(right, params);
  Node& node = nodes_[index];
  node.left = left_index;
  node.right = right_index;
  node.smin = std::min(nodes_[left_index].smin, nodes_[right_index].smin);
  node.smax = std::max(nodes_[left_index].smax, nodes_[right_index].smax);
  node.bounds = nodes_[left_index].bounds;
  node.bounds.expand(nodes_[right_index].bounds);
  return index;
}

std::pair<float, float> BspTree::root_range() const {
  return {nodes_.front().smin, nodes_.front().smax};
}

void BspTree::traverse(const Vec3& viewpoint, float iso,
                       const std::function<void(const CellRange&)>& visit) const {
  traverse_impl(0, viewpoint, iso, visit);
}

void BspTree::traverse_impl(std::int32_t index, const Vec3& viewpoint, float iso,
                            const std::function<void(const CellRange&)>& visit) const {
  const Node& node = nodes_[index];
  if (iso < node.smin || iso > node.smax) {
    return;  // prune: no active cells below this node
  }
  if (node.left < 0) {
    visit(node.range);
    return;
  }
  const double dl = nodes_[node.left].bounds.distance2(viewpoint);
  const double dr = nodes_[node.right].bounds.distance2(viewpoint);
  if (dl <= dr) {
    traverse_impl(node.left, viewpoint, iso, visit);
    traverse_impl(node.right, viewpoint, iso, visit);
  } else {
    traverse_impl(node.right, viewpoint, iso, visit);
    traverse_impl(node.left, viewpoint, iso, visit);
  }
}

void BspTree::traverse_unordered(float iso,
                                 const std::function<void(const CellRange&)>& visit) const {
  for (const Node& node : nodes_) {
    if (node.left < 0 && iso >= node.smin && iso <= node.smax) {
      visit(node.range);
    }
  }
}

}  // namespace vira::grid
