#pragma once

/// \file dataset_io.hpp
/// On-disk multi-block dataset format (".vmb" steps + ".vmi" index).
///
/// Layout mirrors how multi-block CFD results are stored in practice and
/// what the paper's DMS needs: one file per time step, each holding all
/// blocks back to back, with a byte-range table so a *single block* can be
/// read without touching the rest of the file — the DMS's "data item" whose
/// source is "a part of a file" (Sec. 4). The index file `dataset.vmi`
/// records the global inventory (Table 1's time steps / blocks / size on
/// disk is printed straight from it).

#include <cstdint>
#include <string>
#include <vector>

#include "grid/structured_block.hpp"
#include "math/aabb.hpp"
#include "util/byte_buffer.hpp"

namespace vira::grid {

struct BlockInfo {
  int id = 0;
  int ni = 0;
  int nj = 0;
  int nk = 0;
  Aabb bounds;
  std::uint64_t offset = 0;  ///< byte offset of the block payload in its step file
  std::uint64_t size = 0;    ///< payload size in bytes
};

struct TimestepInfo {
  double time = 0.0;
  std::string filename;  ///< step file name, relative to the dataset directory
  std::vector<BlockInfo> blocks;
};

struct DatasetMeta {
  std::string name;
  std::vector<std::string> scalar_fields;
  std::vector<TimestepInfo> steps;

  int timestep_count() const { return static_cast<int>(steps.size()); }
  int block_count() const { return steps.empty() ? 0 : static_cast<int>(steps[0].blocks.size()); }
  std::uint64_t total_bytes() const;
  /// Union of block bounds over the first time step.
  Aabb bounds() const;

  void serialize(util::ByteBuffer& out) const;
  static DatasetMeta deserialize(util::ByteBuffer& in);
};

/// Streams a dataset to disk one time step at a time so generation never
/// needs the whole dataset in memory.
class DatasetWriter {
 public:
  /// Creates `directory` if needed. `name` becomes DatasetMeta::name.
  DatasetWriter(std::string directory, std::string name);

  void begin_timestep(double time);
  void add_block(const StructuredBlock& block);
  void end_timestep();

  /// Writes dataset.vmi and returns the final metadata.
  DatasetMeta finish();

 private:
  std::string directory_;
  DatasetMeta meta_;
  util::ByteBuffer step_payload_;
  bool in_step_ = false;
  bool finished_ = false;
};

/// Random access to a written dataset; block reads touch only the block's
/// byte range. Stateless per call — safe to share across threads.
class DatasetReader {
 public:
  explicit DatasetReader(std::string directory);

  const DatasetMeta& meta() const { return meta_; }
  const std::string& directory() const { return directory_; }

  /// Raw serialized bytes of one block (what the DMS caches).
  util::ByteBuffer read_block_bytes(int step, int block) const;

  /// Decoded block (read + deserialize).
  StructuredBlock read_block(int step, int block) const;

 private:
  std::string directory_;
  DatasetMeta meta_;
};

/// Convenience for tests: write a ByteBuffer to / read one from a file.
void write_file(const std::string& path, const util::ByteBuffer& buffer);
util::ByteBuffer read_file(const std::string& path);
util::ByteBuffer read_file_range(const std::string& path, std::uint64_t offset,
                                 std::uint64_t size);

}  // namespace vira::grid
