#pragma once

/// \file cell_locator.hpp
/// Point location in a curvilinear block.
///
/// Particle tracing needs "which cell contains p, and at which local
/// coordinates" thousands of times per trace. A uniform bin grid over the
/// block's bounding box maps a query point to a short candidate cell list;
/// each candidate is verified by Newton inversion of its trilinear map.
/// Queries can pass a hint cell (the cell of the previous integration
/// point) which is tried — together with its 26 neighbours — before the
/// bins, making the common "particle moved one cell" case O(1).

#include <cstdint>
#include <optional>
#include <vector>

#include "grid/structured_block.hpp"

namespace vira::grid {

class CellLocator {
 public:
  /// Builds bins over `block`; the block must outlive the locator.
  /// `target_cells_per_bin` tunes bin resolution.
  explicit CellLocator(const StructuredBlock& block, double target_cells_per_bin = 8.0);

  /// Finds the cell containing `p`. Returns nullopt if `p` lies outside
  /// the block (or inside a gap of a degenerate mesh).
  std::optional<CellCoord> locate(const Vec3& p) const;

  /// Like locate(), but first tries `hint` and its neighbourhood.
  std::optional<CellCoord> locate(const Vec3& p, const CellCoord& hint) const;

  const StructuredBlock& block() const { return block_; }

  /// Diagnostics.
  int bins_i() const { return bins_i_; }
  int bins_j() const { return bins_j_; }
  int bins_k() const { return bins_k_; }

 private:
  std::optional<CellCoord> try_cell(int ci, int cj, int ck, const Vec3& p) const;
  std::size_t bin_index(int bi, int bj, int bk) const {
    return (static_cast<std::size_t>(bk) * bins_j_ + bj) * bins_i_ + bi;
  }

  const StructuredBlock& block_;
  Aabb bounds_;
  int bins_i_ = 1;
  int bins_j_ = 1;
  int bins_k_ = 1;
  /// Per bin: packed cell indices (ci + cj*Ci + ck*Ci*Cj).
  std::vector<std::vector<std::int32_t>> bins_;
};

}  // namespace vira::grid
