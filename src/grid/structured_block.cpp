#include "grid/structured_block.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace vira::grid {

void trilinear_weights(double u, double v, double w, std::array<double, 8>& weights) {
  const double iu = 1.0 - u;
  const double iv = 1.0 - v;
  const double iw = 1.0 - w;
  weights[0] = iu * iv * iw;
  weights[1] = u * iv * iw;
  weights[2] = u * v * iw;
  weights[3] = iu * v * iw;
  weights[4] = iu * iv * w;
  weights[5] = u * iv * w;
  weights[6] = u * v * w;
  weights[7] = iu * v * w;
}

namespace {

/// Partial derivatives of the corner weights w.r.t. (u,v,w).
void corner_weight_gradients(double u, double v, double w, std::array<double, 8>& du,
                             std::array<double, 8>& dv, std::array<double, 8>& dw) {
  const double iu = 1.0 - u;
  const double iv = 1.0 - v;
  const double iw = 1.0 - w;
  du = {-iv * iw, iv * iw, v * iw, -v * iw, -iv * w, iv * w, v * w, -v * w};
  dv = {-iu * iw, -u * iw, u * iw, iu * iw, -iu * w, -u * w, u * w, iu * w};
  dw = {-iu * iv, -u * iv, -u * v, -iu * v, iu * iv, u * iv, u * v, iu * v};
}

constexpr std::uint32_t kBlockMagic = 0x564d4231;  // "VMB1"

/// Splits an interleaved xyz float payload into three component arrays.
/// Reads through memcpy: the wire bytes carry no alignment guarantee, so a
/// reinterpret_cast load would be UB (and trip the UBSan leg).
void deinterleave3(std::span<const std::byte> src, std::size_t n, float* x, float* y,
                   float* z) {
  const std::byte* cursor = src.data();
  for (std::size_t idx = 0; idx < n; ++idx) {
    float xyz[3];
    std::memcpy(xyz, cursor, sizeof(xyz));
    cursor += sizeof(xyz);
    x[idx] = xyz[0];
    y[idx] = xyz[1];
    z[idx] = xyz[2];
  }
}

/// Inverse of deinterleave3: rebuilds the interleaved wire payload.
void interleave3(const float* x, const float* y, const float* z, std::size_t n,
                 std::vector<float>& out) {
  out.resize(n * 3);
  for (std::size_t idx = 0; idx < n; ++idx) {
    out[idx * 3] = x[idx];
    out[idx * 3 + 1] = y[idx];
    out[idx * 3 + 2] = z[idx];
  }
}

}  // namespace

StructuredBlock::StructuredBlock(int ni, int nj, int nk) : ni_(ni), nj_(nj), nk_(nk) {
  if (ni < 2 || nj < 2 || nk < 2) {
    throw std::invalid_argument("StructuredBlock: each dimension needs >= 2 nodes");
  }
  const auto n = static_cast<std::size_t>(node_count());
  px_.assign(n, 0.0f);
  py_.assign(n, 0.0f);
  pz_.assign(n, 0.0f);
  vx_.assign(n, 0.0f);
  vy_.assign(n, 0.0f);
  vz_.assign(n, 0.0f);
  fields_.reset(node_count());
}

const Aabb& StructuredBlock::bounds() const {
  if (bounds_dirty_) {
    bounds_ = Aabb();
    const auto n = static_cast<std::size_t>(node_count());
    for (std::size_t idx = 0; idx < n; ++idx) {
      bounds_.expand({px_[idx], py_[idx], pz_[idx]});
    }
    bounds_dirty_ = false;
  }
  return bounds_;
}

std::span<const float> StructuredBlock::scalar(const std::string& name) const {
  return fields_.values(require_field(name));
}

FieldId StructuredBlock::require_field(const std::string& name) const {
  const FieldId id = fields_.find(name);
  if (id == kInvalidFieldId) {
    throw std::out_of_range("StructuredBlock: unknown scalar field '" + name + "'");
  }
  return id;
}

std::pair<float, float> StructuredBlock::scalar_range(const std::string& name) const {
  const auto values = scalar(name);
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (const float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {lo, hi};
}

std::array<std::int64_t, 8> StructuredBlock::cell_corners(int ci, int cj, int ck) const {
  return {node_index(ci, cj, ck),         node_index(ci + 1, cj, ck),
          node_index(ci + 1, cj + 1, ck), node_index(ci, cj + 1, ck),
          node_index(ci, cj, ck + 1),     node_index(ci + 1, cj, ck + 1),
          node_index(ci + 1, cj + 1, ck + 1), node_index(ci, cj + 1, ck + 1)};
}

Aabb StructuredBlock::cell_bounds(int ci, int cj, int ck) const {
  Aabb box;
  for (const auto corner : cell_corners(ci, cj, ck)) {
    box.expand(point_at(corner));
  }
  return box;
}

Vec3 StructuredBlock::interpolate_position(const CellCoord& c) const {
  std::array<double, 8> weights;
  trilinear_weights(c.u, c.v, c.w, weights);
  const auto corners = cell_corners(c.i, c.j, c.k);
  Vec3 p;
  for (int n = 0; n < 8; ++n) {
    p += point_at(corners[n]) * weights[n];
  }
  return p;
}

Vec3 StructuredBlock::interpolate_velocity(const CellCoord& c) const {
  std::array<double, 8> weights;
  trilinear_weights(c.u, c.v, c.w, weights);
  const auto corners = cell_corners(c.i, c.j, c.k);
  Vec3 u;
  for (int n = 0; n < 8; ++n) {
    u += velocity_at(corners[n]) * weights[n];
  }
  return u;
}

double StructuredBlock::interpolate_scalar(FieldId id, const CellCoord& c) const {
  std::array<double, 8> weights;
  trilinear_weights(c.u, c.v, c.w, weights);
  const auto corners = cell_corners(c.i, c.j, c.k);
  const auto values = fields_.values(id);
  double s = 0.0;
  for (int n = 0; n < 8; ++n) {
    s += static_cast<double>(values[corners[n]]) * weights[n];
  }
  return s;
}

std::optional<CellCoord> StructuredBlock::world_to_local(int ci, int cj, int ck, const Vec3& p,
                                                         double eps) const {
  CellCoord coord{ci, cj, ck, 0.5, 0.5, 0.5};
  const auto corners = cell_corners(ci, cj, ck);
  std::array<Vec3, 8> pts;
  for (int n = 0; n < 8; ++n) {
    pts[n] = point_at(corners[n]);
  }

  // Newton iteration on F(u,v,w) = X(u,v,w) - p.
  for (int iter = 0; iter < 25; ++iter) {
    std::array<double, 8> weights;
    trilinear_weights(coord.u, coord.v, coord.w, weights);
    Vec3 x;
    for (int n = 0; n < 8; ++n) {
      x += pts[n] * weights[n];
    }
    const Vec3 residual = x - p;
    if (residual.norm2() < 1e-24) {
      break;
    }

    std::array<double, 8> du;
    std::array<double, 8> dv;
    std::array<double, 8> dw;
    corner_weight_gradients(coord.u, coord.v, coord.w, du, dv, dw);
    Vec3 xu;
    Vec3 xv;
    Vec3 xw;
    for (int n = 0; n < 8; ++n) {
      xu += pts[n] * du[n];
      xv += pts[n] * dv[n];
      xw += pts[n] * dw[n];
    }
    const Mat3 jac = Mat3::from_cols(xu, xv, xw);
    if (std::fabs(jac.det()) < 1e-30) {
      return std::nullopt;  // degenerate cell
    }
    const Vec3 step = jac.inverse() * residual;
    coord.u -= step.x;
    coord.v -= step.y;
    coord.w -= step.z;
    // Keep the iterate in a sane neighbourhood of the cell.
    coord.u = std::clamp(coord.u, -0.5, 1.5);
    coord.v = std::clamp(coord.v, -0.5, 1.5);
    coord.w = std::clamp(coord.w, -0.5, 1.5);
    if (step.norm2() < 1e-26) {
      break;
    }
  }

  const double lo = -eps;
  const double hi = 1.0 + eps;
  if (coord.u < lo || coord.u > hi || coord.v < lo || coord.v > hi || coord.w < lo ||
      coord.w > hi) {
    return std::nullopt;
  }
  coord.u = std::clamp(coord.u, 0.0, 1.0);
  coord.v = std::clamp(coord.v, 0.0, 1.0);
  coord.w = std::clamp(coord.w, 0.0, 1.0);

  // Reject false positives of the clamped Newton iterate: the mapped-back
  // point must actually coincide with the query.
  const Vec3 mapped = interpolate_position(coord);
  const double scale = cell_bounds(ci, cj, ck).diagonal();
  if ((mapped - p).norm() > 1e-6 * (1.0 + scale)) {
    return std::nullopt;
  }
  return coord;
}

Mat3 StructuredBlock::position_jacobian(int i, int j, int k) const {
  auto central = [&](auto getter, int axis) -> Vec3 {
    int lo[3] = {i, j, k};
    int hi[3] = {i, j, k};
    const int dims[3] = {ni_, nj_, nk_};
    double h = 2.0;
    if (lo[axis] > 0) {
      --lo[axis];
    } else {
      h -= 1.0;
    }
    if (hi[axis] < dims[axis] - 1) {
      ++hi[axis];
    } else {
      h -= 1.0;
    }
    const Vec3 a = getter(lo[0], lo[1], lo[2]);
    const Vec3 b = getter(hi[0], hi[1], hi[2]);
    return (b - a) / h;
  };
  auto pos = [&](int a, int b, int c) { return point(a, b, c); };
  return Mat3::from_cols(central(pos, 0), central(pos, 1), central(pos, 2));
}

Mat3 StructuredBlock::velocity_gradient(int i, int j, int k) const {
  auto central = [&](int axis) -> Vec3 {
    int lo[3] = {i, j, k};
    int hi[3] = {i, j, k};
    const int dims[3] = {ni_, nj_, nk_};
    double h = 2.0;
    if (lo[axis] > 0) {
      --lo[axis];
    } else {
      h -= 1.0;
    }
    if (hi[axis] < dims[axis] - 1) {
      ++hi[axis];
    } else {
      h -= 1.0;
    }
    const Vec3 a = velocity(lo[0], lo[1], lo[2]);
    const Vec3 b = velocity(hi[0], hi[1], hi[2]);
    return (b - a) / h;
  };

  // F[c][axis] = du_c/dξ_axis; J[c][axis] = dx_c/dξ_axis.
  const Mat3 f = Mat3::from_cols(central(0), central(1), central(2));
  const Mat3 jac = position_jacobian(i, j, k);
  return f * jac.inverse();  // du_i/dx_j
}

Vec3 StructuredBlock::scalar_gradient(FieldId id, int i, int j, int k) const {
  const auto values = fields_.values(id);
  auto central = [&](int axis) -> double {
    int lo[3] = {i, j, k};
    int hi[3] = {i, j, k};
    const int dims[3] = {ni_, nj_, nk_};
    double h = 2.0;
    if (lo[axis] > 0) {
      --lo[axis];
    } else {
      h -= 1.0;
    }
    if (hi[axis] < dims[axis] - 1) {
      ++hi[axis];
    } else {
      h -= 1.0;
    }
    return (static_cast<double>(values[node_index(hi[0], hi[1], hi[2])]) -
            static_cast<double>(values[node_index(lo[0], lo[1], lo[2])])) /
           h;
  };
  // ds/dx_j = Σ_k (ds/dξ_k)(J⁻¹)[k][j]
  const Vec3 dxi{central(0), central(1), central(2)};
  const Mat3 inv = position_jacobian(i, j, k).inverse();
  return {dxi.x * inv(0, 0) + dxi.y * inv(1, 0) + dxi.z * inv(2, 0),
          dxi.x * inv(0, 1) + dxi.y * inv(1, 1) + dxi.z * inv(2, 1),
          dxi.x * inv(0, 2) + dxi.y * inv(1, 2) + dxi.z * inv(2, 2)};
}

StructuredBlock StructuredBlock::coarsened(int stride) const {
  if (stride < 1) {
    throw std::invalid_argument("StructuredBlock::coarsened: stride must be >= 1");
  }
  auto pick_indices = [stride](int n) {
    std::vector<int> indices;
    for (int i = 0; i < n - 1; i += stride) {
      indices.push_back(i);
    }
    indices.push_back(n - 1);
    return indices;
  };
  const auto is = pick_indices(ni_);
  const auto js = pick_indices(nj_);
  const auto ks = pick_indices(nk_);

  StructuredBlock coarse(static_cast<int>(is.size()), static_cast<int>(js.size()),
                         static_cast<int>(ks.size()));
  coarse.block_id_ = block_id_;
  coarse.time_ = time_;
  const auto names = scalar_names();
  std::vector<std::pair<std::span<const float>, std::span<float>>> field_pairs;
  field_pairs.reserve(names.size());
  for (const auto& name : names) {
    const auto src = fields_.values(fields_.find(name));
    field_pairs.emplace_back(src, coarse.scalar(name));
  }
  for (std::size_t kk = 0; kk < ks.size(); ++kk) {
    for (std::size_t jj = 0; jj < js.size(); ++jj) {
      for (std::size_t ii = 0; ii < is.size(); ++ii) {
        const int si = is[ii];
        const int sj = js[jj];
        const int sk = ks[kk];
        const int di = static_cast<int>(ii);
        const int dj = static_cast<int>(jj);
        const int dk = static_cast<int>(kk);
        coarse.set_point(di, dj, dk, point(si, sj, sk));
        coarse.set_velocity(di, dj, dk, velocity(si, sj, sk));
        const auto src_node = node_index(si, sj, sk);
        const auto dst_node = coarse.node_index(di, dj, dk);
        for (auto& [src, dst] : field_pairs) {
          dst[dst_node] = src[src_node];
        }
      }
    }
  }
  return coarse;
}

void StructuredBlock::serialize(util::ByteBuffer& out) const {
  out.write<std::uint32_t>(kBlockMagic);
  out.write<std::int32_t>(ni_);
  out.write<std::int32_t>(nj_);
  out.write<std::int32_t>(nk_);
  out.write<std::int32_t>(block_id_);
  out.write<double>(time_);
  // Wire format predates the SoA layout: positions/velocity travel
  // interleaved and scalars in sorted-name order (what the old std::map
  // iteration produced), so blobs stay byte-identical across versions.
  const auto n = static_cast<std::size_t>(node_count());
  std::vector<float> interleaved;
  interleave3(px_.data(), py_.data(), pz_.data(), n, interleaved);
  out.write_vector(interleaved);
  interleave3(vx_.data(), vy_.data(), vz_.data(), n, interleaved);
  out.write_vector(interleaved);
  const auto names = fields_.sorted_names();
  out.write<std::uint32_t>(static_cast<std::uint32_t>(names.size()));
  for (const auto& name : names) {
    out.write_string(name);
    const auto values = fields_.values(fields_.find(name));
    out.write<std::uint64_t>(values.size());
    if (!values.empty()) {
      out.write_raw(values.data(), values.size() * sizeof(float));
    }
  }
}

StructuredBlock StructuredBlock::deserialize(util::ByteBuffer& in) {
  // Delegate to the zero-copy cursor core, then advance the buffer's read
  // position by however much the cursor consumed so call sites that keep
  // reading past the block still work.
  util::ByteReader reader(in);
  StructuredBlock block = deserialize(reader);
  in.seek(in.read_pos() + reader.pos());
  return block;
}

StructuredBlock StructuredBlock::deserialize(util::ByteReader& in) {
  const auto magic = in.read<std::uint32_t>();
  if (magic != kBlockMagic) {
    throw std::runtime_error("StructuredBlock::deserialize: bad magic");
  }
  const auto ni = in.read<std::int32_t>();
  const auto nj = in.read<std::int32_t>();
  const auto nk = in.read<std::int32_t>();
  StructuredBlock block(ni, nj, nk);
  block.block_id_ = in.read<std::int32_t>();
  block.time_ = in.read<double>();

  // De-interleave the xyz payloads directly from the source bytes into the
  // aligned SoA arrays — no intermediate interleaved vector.
  const auto n = static_cast<std::size_t>(block.node_count());
  auto read_interleaved = [&](float* x, float* y, float* z) {
    const auto count = in.read<std::uint64_t>();
    if (count != n * 3) {
      throw std::runtime_error("StructuredBlock::deserialize: truncated payload");
    }
    deinterleave3(in.view(count * sizeof(float)), n, x, y, z);
  };
  read_interleaved(block.px_.data(), block.py_.data(), block.pz_.data());
  read_interleaved(block.vx_.data(), block.vy_.data(), block.vz_.data());

  const auto nscalars = in.read<std::uint32_t>();
  for (std::uint32_t s = 0; s < nscalars; ++s) {
    const std::string name = in.read_string();
    const auto count = in.read<std::uint64_t>();
    if (count != n) {
      throw std::runtime_error("StructuredBlock::deserialize: scalar size mismatch");
    }
    const auto values = block.scalar(name);
    const auto src = in.view(count * sizeof(float));
    std::memcpy(values.data(), src.data(), src.size());
  }
  block.bounds_dirty_ = true;
  return block;
}

std::uint64_t StructuredBlock::serialized_size() const {
  const auto n = static_cast<std::uint64_t>(node_count());
  std::uint64_t size = 4 + 4 * 4 + 8;       // header
  size += 8 + n * 3 * sizeof(float);        // points
  size += 8 + n * 3 * sizeof(float);        // velocity
  size += 4;                                // scalar count
  for (const auto& name : fields_.sorted_names()) {
    size += 8 + name.size() + 8 + n * sizeof(float);
  }
  return size;
}

}  // namespace vira::grid
