#pragma once

/// \file field_store.hpp
/// Structure-of-arrays node-field storage (DESIGN.md §13).
///
/// Every node field of a block — the three position components, the three
/// velocity components and any number of named scalars — lives in its own
/// contiguous float array, 64-byte aligned and padded to a multiple of 16
/// floats (one cache line). The SIMD extraction kernels rely on this
/// contract: vector loads never straddle an allocation boundary, and a
/// final partial vector can read (never write beyond the logical size
/// except into the zeroed pad) without masking.
///
/// Field names are interned to small integer FieldId handles at
/// registration time, so the per-node hot loops index plain arrays instead
/// of walking a std::map<std::string, ...> per access — the lookup cost the
/// old array-of-structs layout paid in scalar_at/interpolate_scalar.
///
/// The SoA layout is a *memory* layout only: blocks serialize to exactly
/// the same wire blob as before (interleaved xyz points/velocity, scalars
/// in name-sorted order), so cached DMS blobs, peer transfer and DST
/// trajectories are unaffected.

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vira::grid {

/// Alignment of every field array, in bytes (one cache line; also the
/// natural alignment for 512-bit vector loads).
inline constexpr std::size_t kFieldAlignment = 64;
/// Field arrays are padded to a multiple of this many floats (= one
/// 64-byte line), zero-filled beyond the logical size.
inline constexpr std::size_t kFieldPadFloats = kFieldAlignment / sizeof(float);

/// Interned handle for a named node field; index into the store's arrays.
using FieldId = std::uint32_t;
inline constexpr FieldId kInvalidFieldId = 0xffffffffu;

/// A 64-byte-aligned, pad-to-cache-line float array. The logical size is
/// what the grid sees; the physical allocation rounds up to kFieldPadFloats
/// and keeps the pad zeroed so unmasked SIMD tails are safe to read.
class AlignedFloats {
 public:
  AlignedFloats() = default;
  explicit AlignedFloats(std::size_t n, float fill = 0.0f) { assign(n, fill); }
  ~AlignedFloats() { release(); }

  AlignedFloats(const AlignedFloats& other) { *this = other; }
  AlignedFloats& operator=(const AlignedFloats& other) {
    if (this != &other) {
      assign(other.size_, 0.0f);
      if (size_ > 0) {
        std::memcpy(data_, other.data_, size_ * sizeof(float));
      }
    }
    return *this;
  }
  AlignedFloats(AlignedFloats&& other) noexcept
      : data_(other.data_), size_(other.size_), padded_(other.padded_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.padded_ = 0;
  }
  AlignedFloats& operator=(AlignedFloats&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      size_ = other.size_;
      padded_ = other.padded_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.padded_ = 0;
    }
    return *this;
  }

  /// Reallocates to logical size `n`, filling every float (pad included
  /// beyond `n`, which stays zero) so the array starts deterministic.
  void assign(std::size_t n, float fill);

  float* data() noexcept { return data_; }
  const float* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  /// Physical element count: size() rounded up to kFieldPadFloats.
  std::size_t padded_size() const noexcept { return padded_; }
  bool empty() const noexcept { return size_ == 0; }

  float& operator[](std::size_t i) noexcept { return data_[i]; }
  const float& operator[](std::size_t i) const noexcept { return data_[i]; }

  std::span<float> span() noexcept { return {data_, size_}; }
  std::span<const float> span() const noexcept { return {data_, size_}; }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
  }

  float* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t padded_ = 0;
};

/// Name-interning structure-of-arrays store for the named node scalars of
/// one block. Ids are dense (0..field_count-1) in registration order;
/// registration order is an in-memory detail only — serialization walks
/// fields in sorted-name order to keep the wire blob stable.
class FieldStore {
 public:
  FieldStore() = default;
  explicit FieldStore(std::int64_t nodes) : nodes_(nodes) {}

  /// Node count every field array is sized for. Changing it drops all
  /// fields (a block's topology never changes after construction).
  void reset(std::int64_t nodes);
  std::int64_t nodes() const noexcept { return nodes_; }

  std::size_t field_count() const noexcept { return arrays_.size(); }

  /// Id of `name`, or kInvalidFieldId when the field does not exist.
  FieldId find(std::string_view name) const;
  bool has(std::string_view name) const { return find(name) != kInvalidFieldId; }

  /// Interns `name`, creating a zero-filled field on first use.
  FieldId ensure(std::string_view name);

  const std::string& name(FieldId id) const { return names_[id]; }
  /// Field names in sorted order (the serialization order).
  std::vector<std::string> sorted_names() const;

  std::span<float> values(FieldId id) { return arrays_[id].span(); }
  std::span<const float> values(FieldId id) const { return arrays_[id].span(); }
  AlignedFloats& array(FieldId id) { return arrays_[id]; }
  const AlignedFloats& array(FieldId id) const { return arrays_[id]; }

 private:
  std::int64_t nodes_ = 0;
  std::vector<std::string> names_;
  std::vector<AlignedFloats> arrays_;
  std::unordered_map<std::string, FieldId> index_;
};

}  // namespace vira::grid
