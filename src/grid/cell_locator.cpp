#include "grid/cell_locator.hpp"

#include <algorithm>
#include <cmath>

namespace vira::grid {

CellLocator::CellLocator(const StructuredBlock& block, double target_cells_per_bin)
    : block_(block), bounds_(block.bounds()) {
  const double ncells = static_cast<double>(block.cell_count());
  const double bins_total = std::max(1.0, ncells / std::max(1.0, target_cells_per_bin));
  const Vec3 extent = bounds_.extent();
  const double volume = std::max(1e-300, extent.x * extent.y * extent.z);
  const double scale = std::cbrt(bins_total / volume);
  auto axis_bins = [&](double len) {
    return std::clamp(static_cast<int>(std::ceil(len * scale)), 1, 256);
  };
  bins_i_ = axis_bins(extent.x);
  bins_j_ = axis_bins(extent.y);
  bins_k_ = axis_bins(extent.z);
  bins_.assign(static_cast<std::size_t>(bins_i_) * bins_j_ * bins_k_, {});

  const int ci_max = block.cells_i();
  const int cj_max = block.cells_j();
  auto clamp_bin = [](int v, int n) { return std::clamp(v, 0, n - 1); };

  for (int ck = 0; ck < block.cells_k(); ++ck) {
    for (int cj = 0; cj < block.cells_j(); ++cj) {
      for (int ci = 0; ci < block.cells_i(); ++ci) {
        const Aabb cell_box = block.cell_bounds(ci, cj, ck);
        const Vec3 rel_lo = cell_box.lo - bounds_.lo;
        const Vec3 rel_hi = cell_box.hi - bounds_.lo;
        const Vec3 extent_safe{std::max(extent.x, 1e-300), std::max(extent.y, 1e-300),
                               std::max(extent.z, 1e-300)};
        const int bi0 = clamp_bin(static_cast<int>(rel_lo.x / extent_safe.x * bins_i_), bins_i_);
        const int bi1 = clamp_bin(static_cast<int>(rel_hi.x / extent_safe.x * bins_i_), bins_i_);
        const int bj0 = clamp_bin(static_cast<int>(rel_lo.y / extent_safe.y * bins_j_), bins_j_);
        const int bj1 = clamp_bin(static_cast<int>(rel_hi.y / extent_safe.y * bins_j_), bins_j_);
        const int bk0 = clamp_bin(static_cast<int>(rel_lo.z / extent_safe.z * bins_k_), bins_k_);
        const int bk1 = clamp_bin(static_cast<int>(rel_hi.z / extent_safe.z * bins_k_), bins_k_);
        const std::int32_t packed =
            ci + static_cast<std::int32_t>(cj) * ci_max +
            static_cast<std::int32_t>(ck) * ci_max * cj_max;
        for (int bk = bk0; bk <= bk1; ++bk) {
          for (int bj = bj0; bj <= bj1; ++bj) {
            for (int bi = bi0; bi <= bi1; ++bi) {
              bins_[bin_index(bi, bj, bk)].push_back(packed);
            }
          }
        }
      }
    }
  }
}

std::optional<CellCoord> CellLocator::try_cell(int ci, int cj, int ck, const Vec3& p) const {
  if (ci < 0 || cj < 0 || ck < 0 || ci >= block_.cells_i() || cj >= block_.cells_j() ||
      ck >= block_.cells_k()) {
    return std::nullopt;
  }
  if (!block_.cell_bounds(ci, cj, ck).contains(p, 1e-9)) {
    return std::nullopt;
  }
  return block_.world_to_local(ci, cj, ck, p, 1e-6);
}

std::optional<CellCoord> CellLocator::locate(const Vec3& p) const {
  if (!bounds_.contains(p, 1e-9)) {
    return std::nullopt;
  }
  const Vec3 extent = bounds_.extent();
  auto to_bin = [&](double rel, double len, int n) {
    if (len <= 0.0) {
      return 0;
    }
    return std::clamp(static_cast<int>(rel / len * n), 0, n - 1);
  };
  const int bi = to_bin(p.x - bounds_.lo.x, extent.x, bins_i_);
  const int bj = to_bin(p.y - bounds_.lo.y, extent.y, bins_j_);
  const int bk = to_bin(p.z - bounds_.lo.z, extent.z, bins_k_);

  const int ci_max = block_.cells_i();
  const int cj_max = block_.cells_j();
  for (const std::int32_t packed : bins_[bin_index(bi, bj, bk)]) {
    const int ci = packed % ci_max;
    const int cj = (packed / ci_max) % cj_max;
    const int ck = packed / (ci_max * cj_max);
    if (auto coord = try_cell(ci, cj, ck, p)) {
      return coord;
    }
  }
  return std::nullopt;
}

std::optional<CellCoord> CellLocator::locate(const Vec3& p, const CellCoord& hint) const {
  // Try the hint cell itself, then its 26-neighbourhood.
  if (auto coord = try_cell(hint.i, hint.j, hint.k, p)) {
    return coord;
  }
  for (int dk = -1; dk <= 1; ++dk) {
    for (int dj = -1; dj <= 1; ++dj) {
      for (int di = -1; di <= 1; ++di) {
        if (di == 0 && dj == 0 && dk == 0) {
          continue;
        }
        if (auto coord = try_cell(hint.i + di, hint.j + dj, hint.k + dk, p)) {
          return coord;
        }
      }
    }
  }
  return locate(p);
}

}  // namespace vira::grid
