#pragma once

/// \file analytic_fields.hpp
/// Analytic unsteady flow fields.
///
/// These serve two purposes: (1) they populate the synthetic Engine and
/// Propfan datasets (the original RWTH/DLR data is proprietary — see
/// DESIGN.md), and (2) they give algorithm tests ground truth (a Lamb–Oseen
/// vortex has a known λ2-negative core; a rigid rotation advects particles
/// on exact circles).

#include <cmath>
#include <memory>
#include <vector>

#include "math/vec3.hpp"

namespace vira::grid {

using math::Vec3;

/// Time-dependent velocity field u(p, t).
class FlowField {
 public:
  virtual ~FlowField() = default;
  virtual Vec3 velocity(const Vec3& p, double t) const = 0;

  /// A pressure-like scalar; default derives a Bernoulli-style value from
  /// the local speed, normalized by the field's reference speed so the
  /// result stays O(1) whether the flow moves at 1 m/s or 150 m/s.
  virtual double pressure(const Vec3& p, double t) const {
    const Vec3 u = velocity(p, t);
    const double uref = reference_speed();
    return 1.0 - 0.5 * u.norm2() / (uref * uref);
  }

  /// Characteristic speed used to normalize the default pressure.
  virtual double reference_speed() const { return 1.0; }
};

/// Constant velocity everywhere.
class UniformFlow final : public FlowField {
 public:
  explicit UniformFlow(const Vec3& u) : u_(u) {}
  Vec3 velocity(const Vec3&, double) const override { return u_; }

 private:
  Vec3 u_;
};

/// Solid-body rotation with angular velocity `omega` about an axis through
/// `center` with direction `axis` (normalized internally).
class RigidRotation final : public FlowField {
 public:
  RigidRotation(const Vec3& center, const Vec3& axis, double omega)
      : center_(center), axis_(axis.normalized()), omega_(omega) {}

  Vec3 velocity(const Vec3& p, double) const override {
    return (axis_ * omega_).cross(p - center_);
  }

 private:
  Vec3 center_;
  Vec3 axis_;
  double omega_;
};

/// Lamb–Oseen vortex: a viscous line vortex with circulation `gamma`, core
/// radius `core` (optionally growing in time), axis through `center` along
/// `axis`. The classic λ2 test case: λ2 < 0 inside the core.
class LambOseenVortex final : public FlowField {
 public:
  LambOseenVortex(const Vec3& center, const Vec3& axis, double gamma, double core,
                  double core_growth = 0.0)
      : center_(center),
        axis_(axis.normalized()),
        gamma_(gamma),
        core_(core),
        core_growth_(core_growth) {}

  Vec3 velocity(const Vec3& p, double t) const override {
    const Vec3 rel = p - center_;
    const Vec3 radial = rel - axis_ * rel.dot(axis_);
    const double r = radial.norm();
    const double rc2 = core_radius2(t);
    if (r < 1e-12) {
      return {};
    }
    constexpr double kTwoPi = 6.28318530717958647692;
    const double v_theta = gamma_ / (kTwoPi * r) * (1.0 - std::exp(-r * r / rc2));
    const Vec3 tangent = axis_.cross(radial / r);
    return tangent * v_theta;
  }

 private:
  double core_radius2(double t) const {
    const double rc = core_ + core_growth_ * t;
    return rc * rc;
  }

  Vec3 center_;
  Vec3 axis_;
  double gamma_;
  double core_;
  double core_growth_;
};

/// Arnold–Beltrami–Childress flow: fully 3D, chaotic particle paths; used
/// by property tests to stress integrators and locators.
class AbcFlow final : public FlowField {
 public:
  AbcFlow(double a = 1.0, double b = std::sqrt(2.0 / 3.0), double c = std::sqrt(1.0 / 3.0))
      : a_(a), b_(b), c_(c) {}

  Vec3 velocity(const Vec3& p, double) const override {
    return {a_ * std::sin(p.z) + c_ * std::cos(p.y), b_ * std::sin(p.x) + a_ * std::cos(p.z),
            c_ * std::sin(p.y) + b_ * std::cos(p.x)};
  }

 private:
  double a_;
  double b_;
  double c_;
};

/// Weighted superposition of fields, each with a time-periodic modulation
/// weight w_i(t) = base_i + amp_i · sin(freq_i · t + phase_i). This is how
/// the synthetic datasets get genuinely unsteady, time-coherent content.
class SuperposedFlow final : public FlowField {
 public:
  struct Component {
    std::shared_ptr<const FlowField> field;
    double base = 1.0;
    double amplitude = 0.0;
    double frequency = 0.0;
    double phase = 0.0;
  };

  void add(std::shared_ptr<const FlowField> field, double base = 1.0, double amplitude = 0.0,
           double frequency = 0.0, double phase = 0.0) {
    components_.push_back({std::move(field), base, amplitude, frequency, phase});
  }

  Vec3 velocity(const Vec3& p, double t) const override {
    Vec3 u;
    for (const auto& c : components_) {
      const double weight = c.base + c.amplitude * std::sin(c.frequency * t + c.phase);
      u += c.field->velocity(p, t) * weight;
    }
    return u;
  }

  double reference_speed() const override { return reference_speed_; }
  void set_reference_speed(double uref) { reference_speed_ = uref; }

  std::size_t component_count() const { return components_.size(); }

 private:
  std::vector<Component> components_;
  double reference_speed_ = 1.0;
};

}  // namespace vira::grid
