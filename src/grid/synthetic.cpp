#include "grid/synthetic.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace vira::grid {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Swirl about an axis whose strength decays with axial distance from a
/// rotor plane — a cheap but structurally faithful blade-row model.
class BladeRowSwirl final : public FlowField {
 public:
  BladeRowSwirl(const Vec3& plane_point, const Vec3& axis, double omega, double axial_decay)
      : plane_point_(plane_point),
        axis_(axis.normalized()),
        omega_(omega),
        axial_decay_(axial_decay) {}

  Vec3 velocity(const Vec3& p, double) const override {
    const Vec3 rel = p - plane_point_;
    const double axial = rel.dot(axis_);
    const double weight = std::exp(-axial * axial / (axial_decay_ * axial_decay_));
    return (axis_ * omega_).cross(rel - axis_ * axial) * weight;
  }

 private:
  Vec3 plane_point_;
  Vec3 axis_;
  double omega_;
  double axial_decay_;
};

/// A blade-tip vortex: a Lamb–Oseen filament parallel to the machine axis
/// whose azimuthal anchor position rotates with the blade row.
class RotatingTipVortex final : public FlowField {
 public:
  RotatingTipVortex(const Vec3& axis_origin, const Vec3& axis, double anchor_radius,
                    double anchor_phase, double row_omega, double gamma, double core)
      : axis_origin_(axis_origin),
        axis_(axis.normalized()),
        anchor_radius_(anchor_radius),
        anchor_phase_(anchor_phase),
        row_omega_(row_omega),
        gamma_(gamma),
        core_(core) {}

  Vec3 velocity(const Vec3& p, double t) const override {
    const double phase = anchor_phase_ + row_omega_ * t;
    // Build an orthonormal frame (e1, e2) perpendicular to the axis.
    const Vec3 e1 = pick_perpendicular(axis_);
    const Vec3 e2 = axis_.cross(e1);
    const Vec3 anchor =
        axis_origin_ + (e1 * std::cos(phase) + e2 * std::sin(phase)) * anchor_radius_;
    const LambOseenVortex filament(anchor, axis_, gamma_, core_);
    return filament.velocity(p, t);
  }

 private:
  static Vec3 pick_perpendicular(const Vec3& axis) {
    const Vec3 trial = std::fabs(axis.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
    return axis.cross(trial).normalized();
  }

  Vec3 axis_origin_;
  Vec3 axis_;
  double anchor_radius_;
  double anchor_phase_;
  double row_omega_;
  double gamma_;
  double core_;
};

/// Builds a curvilinear annular-sector block.
/// Parameterization: ξ → radius [r0,r1], η → angle [th0,th1], ζ → axial
/// coordinate [a0,a1] along `axis` (0=x machine axis, 2=z cylinder axis).
StructuredBlock make_sector_block(int id, int ni, int nj, int nk, double r0, double r1,
                                  double th0, double th1, double a0, double a1, int axis,
                                  double waviness, util::Rng& rng) {
  StructuredBlock block(ni, nj, nk);
  block.set_block_id(id);
  const double jitter = rng.uniform(0.0, 2.0 * kPi);
  for (int k = 0; k < nk; ++k) {
    const double w = nk > 1 ? static_cast<double>(k) / (nk - 1) : 0.0;
    const double a = a0 + (a1 - a0) * w;
    for (int j = 0; j < nj; ++j) {
      const double v = nj > 1 ? static_cast<double>(j) / (nj - 1) : 0.0;
      const double th = th0 + (th1 - th0) * v;
      for (int i = 0; i < ni; ++i) {
        const double u = ni > 1 ? static_cast<double>(i) / (ni - 1) : 0.0;
        // Mild radial waviness makes the mapping genuinely curvilinear.
        const double r =
            (r0 + (r1 - r0) * u) * (1.0 + waviness * std::sin(3.0 * th + 5.0 * w + jitter));
        Vec3 p;
        if (axis == 2) {  // cylinder about z (Engine)
          p = {r * std::cos(th), r * std::sin(th), a};
        } else {  // annulus about x (Propfan)
          p = {a, r * std::cos(th), r * std::sin(th)};
        }
        block.set_point(i, j, k, p);
      }
    }
  }
  return block;
}

/// Core (near-axis) block of the engine cylinder: a square cross-section
/// column, slightly rounded so its cells stay curvilinear.
StructuredBlock make_core_block(int id, int ni, int nj, int nk, double half_width, double z0,
                                double z1) {
  StructuredBlock block(ni, nj, nk);
  block.set_block_id(id);
  for (int k = 0; k < nk; ++k) {
    const double w = nk > 1 ? static_cast<double>(k) / (nk - 1) : 0.0;
    const double z = z0 + (z1 - z0) * w;
    for (int j = 0; j < nj; ++j) {
      const double v = nj > 1 ? 2.0 * j / (nj - 1) - 1.0 : 0.0;  // [-1,1]
      for (int i = 0; i < ni; ++i) {
        const double u = ni > 1 ? 2.0 * i / (ni - 1) - 1.0 : 0.0;
        // Rounded-square mapping: pull corners inwards so the core block
        // roughly inscribes the surrounding annulus.
        const double bulge = 1.0 - 0.2 * u * u * v * v;
        block.set_point(i, j, k, {half_width * u * bulge, half_width * v * bulge, z});
      }
    }
  }
  return block;
}

}  // namespace

void sample_fields(StructuredBlock& block, const FlowField& field, double t) {
  block.set_time(t);
  const auto pressure = block.scalar("pressure");
  const auto density = block.scalar("density");
  for (int k = 0; k < block.nk(); ++k) {
    for (int j = 0; j < block.nj(); ++j) {
      for (int i = 0; i < block.ni(); ++i) {
        const Vec3 p = block.point(i, j, k);
        const Vec3 u = field.velocity(p, t);
        block.set_velocity(i, j, k, u);
        const double press = field.pressure(p, t);
        const auto idx = block.node_index(i, j, k);
        pressure[idx] = static_cast<float>(press);
        // Pseudo-compressible density: isentropic relation around
        // (rho0, p0) = (1.2, 1.0), clamped away from vacuum.
        const double ratio = std::max(0.3, press);
        density[idx] = static_cast<float>(1.2 * std::pow(ratio, 1.0 / 1.4));
      }
    }
  }
}

std::shared_ptr<const FlowField> make_engine_flow(std::uint64_t seed) {
  util::Rng rng(seed);
  auto flow = std::make_shared<SuperposedFlow>();
  // Intake jet: downward axial flow (valves at z = 0.1 m). Kept moderate
  // so particles recirculate for several crank angles instead of being
  // flushed straight through.
  flow->add(std::make_shared<UniformFlow>(Vec3{0.0, 0.0, -2.5}), 1.0, 0.6, 35.0,
            rng.uniform(0.0, kPi));
  // Swirl about the cylinder axis; strength breathes with crank angle.
  flow->add(std::make_shared<RigidRotation>(Vec3{0, 0, 0}, Vec3{0, 0, 1}, 180.0), 1.0, 0.6, 25.0,
            rng.uniform(0.0, kPi));
  // Tumble vortex about a horizontal axis mid-cylinder.
  flow->add(std::make_shared<LambOseenVortex>(Vec3{0.0, 0.0, 0.05}, Vec3{0, 1, 0}, 0.9, 0.018),
            1.0, 0.4, 18.0, rng.uniform(0.0, kPi));
  // Two intake-port vortices under the valves (counter-rotating pair).
  flow->add(std::make_shared<LambOseenVortex>(Vec3{0.02, 0.015, 0.08}, Vec3{0, 0, 1}, 0.5, 0.01),
            1.0, 0.5, 42.0, rng.uniform(0.0, kPi));
  flow->add(std::make_shared<LambOseenVortex>(Vec3{-0.02, 0.015, 0.08}, Vec3{0, 0, 1}, -0.5, 0.01),
            1.0, 0.5, 42.0, rng.uniform(0.0, kPi));
  flow->set_reference_speed(16.0);  // keeps the Bernoulli pressure O(1)
  return flow;
}

std::shared_ptr<const FlowField> make_propfan_flow(std::uint64_t seed) {
  util::Rng rng(seed);
  auto flow = std::make_shared<SuperposedFlow>();
  const Vec3 axis{1, 0, 0};
  // Freestream along the machine axis.
  flow->add(std::make_shared<UniformFlow>(Vec3{40.0, 0.0, 0.0}), 1.0, 0.1, 12.0,
            rng.uniform(0.0, kPi));
  // Two counter-rotating blade rows (front at x=-0.25, rear at x=+0.25).
  flow->add(std::make_shared<BladeRowSwirl>(Vec3{-0.25, 0, 0}, axis, 110.0, 0.35), 1.0, 0.15,
            20.0, rng.uniform(0.0, kPi));
  flow->add(std::make_shared<BladeRowSwirl>(Vec3{0.25, 0, 0}, axis, -110.0, 0.35), 1.0, 0.15,
            20.0, rng.uniform(0.0, kPi));
  // Blade-tip vortices: 6 per row at 85% span, rotating with the row.
  const double tip_radius = 0.85;
  for (int blade = 0; blade < 6; ++blade) {
    const double phase = 2.0 * kPi * blade / 6.0;
    flow->add(std::make_shared<RotatingTipVortex>(Vec3{-0.25, 0, 0}, axis, tip_radius, phase,
                                                  9.0, 1.6, 0.05),
              1.0, 0.0, 0.0, 0.0);
    flow->add(std::make_shared<RotatingTipVortex>(Vec3{0.25, 0, 0}, axis, tip_radius,
                                                  phase + kPi / 6.0, -9.0, -1.6, 0.05),
              1.0, 0.0, 0.0, 0.0);
  }
  flow->set_reference_speed(140.0);  // freestream + blade-tip speeds
  return flow;
}

DatasetMeta generate_engine(const GeneratorConfig& config) {
  const int timesteps = config.timesteps > 0 ? config.timesteps : 63;
  const int ni = config.ni > 0 ? config.ni : 22;
  const int nj = config.nj > 0 ? config.nj : 16;
  const int nk = config.nk > 0 ? config.nk : 12;

  const auto flow = make_engine_flow(config.seed);
  util::Rng rng(config.seed);

  // Geometry: cylinder bore radius 45 mm, height 100 mm.
  constexpr double kBore = 0.045;
  constexpr double kCore = 0.016;
  constexpr double kHeight = 0.10;
  constexpr int kSectors = 11;
  constexpr int kLayers = 2;  // 1 core + 11*2 = 23 blocks

  // Pre-build static geometry once; fields are resampled per time step.
  std::vector<StructuredBlock> geometry;
  geometry.push_back(make_core_block(0, ni, nj, nk, kCore, 0.0, kHeight));
  int id = 1;
  for (int layer = 0; layer < kLayers; ++layer) {
    const double z0 = kHeight * layer / kLayers;
    const double z1 = kHeight * (layer + 1) / kLayers;
    for (int sector = 0; sector < kSectors; ++sector) {
      const double th0 = 2.0 * kPi * sector / kSectors;
      const double th1 = 2.0 * kPi * (sector + 1) / kSectors;
      geometry.push_back(make_sector_block(id++, ni, nj, nk, kCore * 0.9, kBore, th0, th1, z0, z1,
                                           /*axis=*/2, 0.015, rng));
    }
  }

  DatasetWriter writer(config.directory, "Engine");
  for (int step = 0; step < timesteps; ++step) {
    const double t = step * config.dt;
    writer.begin_timestep(t);
    for (auto& block : geometry) {
      sample_fields(block, *flow, t);
      writer.add_block(block);
    }
    writer.end_timestep();
  }
  return writer.finish();
}

DatasetMeta generate_propfan(const GeneratorConfig& config) {
  const int timesteps = config.timesteps > 0 ? config.timesteps : 50;
  const int ni = config.ni > 0 ? config.ni : 16;
  const int nj = config.nj > 0 ? config.nj : 13;
  const int nk = config.nk > 0 ? config.nk : 11;

  const auto flow = make_propfan_flow(config.seed);
  util::Rng rng(config.seed);

  // Geometry: annulus about the x axis, hub 0.3 m, tip 1.0 m, x ∈ [-0.6, 0.6].
  constexpr double kHub = 0.3;
  constexpr double kTip = 1.0;
  constexpr double kX0 = -0.6;
  constexpr double kX1 = 0.6;
  constexpr int kPassages = 12;  // azimuthal
  constexpr int kSegments = 12;  // axial: 12 × 12 = 144 blocks

  std::vector<StructuredBlock> geometry;
  int id = 0;
  for (int segment = 0; segment < kSegments; ++segment) {
    const double a0 = kX0 + (kX1 - kX0) * segment / kSegments;
    const double a1 = kX0 + (kX1 - kX0) * (segment + 1) / kSegments;
    for (int passage = 0; passage < kPassages; ++passage) {
      const double th0 = 2.0 * kPi * passage / kPassages;
      const double th1 = 2.0 * kPi * (passage + 1) / kPassages;
      geometry.push_back(make_sector_block(id++, ni, nj, nk, kHub, kTip, th0, th1, a0, a1,
                                           /*axis=*/0, 0.01, rng));
    }
  }

  DatasetWriter writer(config.directory, "Propfan");
  for (int step = 0; step < timesteps; ++step) {
    const double t = step * config.dt;
    writer.begin_timestep(t);
    for (auto& block : geometry) {
      sample_fields(block, *flow, t);
      writer.add_block(block);
    }
    writer.end_timestep();
  }
  return writer.finish();
}

DatasetMeta generate_box(const std::string& directory, const FlowField& field, int timesteps,
                         int ni, int nj, int nk, const Vec3& lo, const Vec3& hi, double dt,
                         int nblocks) {
  DatasetWriter writer(directory, "Box");
  // Split the box into `nblocks` slabs along x.
  std::vector<StructuredBlock> geometry;
  for (int b = 0; b < nblocks; ++b) {
    StructuredBlock block(ni, nj, nk);
    block.set_block_id(b);
    const double x0 = lo.x + (hi.x - lo.x) * b / nblocks;
    const double x1 = lo.x + (hi.x - lo.x) * (b + 1) / nblocks;
    for (int k = 0; k < nk; ++k) {
      for (int j = 0; j < nj; ++j) {
        for (int i = 0; i < ni; ++i) {
          const double u = ni > 1 ? static_cast<double>(i) / (ni - 1) : 0.0;
          const double v = nj > 1 ? static_cast<double>(j) / (nj - 1) : 0.0;
          const double w = nk > 1 ? static_cast<double>(k) / (nk - 1) : 0.0;
          block.set_point(i, j, k,
                          {x0 + (x1 - x0) * u, lo.y + (hi.y - lo.y) * v, lo.z + (hi.z - lo.z) * w});
        }
      }
    }
    geometry.push_back(std::move(block));
  }
  for (int step = 0; step < timesteps; ++step) {
    const double t = step * dt;
    writer.begin_timestep(t);
    for (auto& block : geometry) {
      sample_fields(block, field, t);
      writer.add_block(block);
    }
    writer.end_timestep();
  }
  return writer.finish();
}

}  // namespace vira::grid
