#include "grid/dataset_io.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace vira::grid {

namespace {

constexpr std::uint32_t kIndexMagic = 0x564d4931;  // "VMI1"

void serialize_aabb(util::ByteBuffer& out, const Aabb& box) {
  out.write<double>(box.lo.x);
  out.write<double>(box.lo.y);
  out.write<double>(box.lo.z);
  out.write<double>(box.hi.x);
  out.write<double>(box.hi.y);
  out.write<double>(box.hi.z);
}

Aabb deserialize_aabb(util::ByteBuffer& in) {
  Aabb box;
  box.lo.x = in.read<double>();
  box.lo.y = in.read<double>();
  box.lo.z = in.read<double>();
  box.hi.x = in.read<double>();
  box.hi.y = in.read<double>();
  box.hi.z = in.read<double>();
  return box;
}

}  // namespace

std::uint64_t DatasetMeta::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& step : steps) {
    for (const auto& block : step.blocks) {
      total += block.size;
    }
  }
  return total;
}

Aabb DatasetMeta::bounds() const {
  Aabb box;
  if (!steps.empty()) {
    for (const auto& block : steps[0].blocks) {
      box.expand(block.bounds);
    }
  }
  return box;
}

void DatasetMeta::serialize(util::ByteBuffer& out) const {
  out.write<std::uint32_t>(kIndexMagic);
  out.write_string(name);
  out.write<std::uint32_t>(static_cast<std::uint32_t>(scalar_fields.size()));
  for (const auto& field : scalar_fields) {
    out.write_string(field);
  }
  out.write<std::uint32_t>(static_cast<std::uint32_t>(steps.size()));
  for (const auto& step : steps) {
    out.write<double>(step.time);
    out.write_string(step.filename);
    out.write<std::uint32_t>(static_cast<std::uint32_t>(step.blocks.size()));
    for (const auto& block : step.blocks) {
      out.write<std::int32_t>(block.id);
      out.write<std::int32_t>(block.ni);
      out.write<std::int32_t>(block.nj);
      out.write<std::int32_t>(block.nk);
      serialize_aabb(out, block.bounds);
      out.write<std::uint64_t>(block.offset);
      out.write<std::uint64_t>(block.size);
    }
  }
}

DatasetMeta DatasetMeta::deserialize(util::ByteBuffer& in) {
  const auto magic = in.read<std::uint32_t>();
  if (magic != kIndexMagic) {
    throw std::runtime_error("DatasetMeta: bad index magic");
  }
  DatasetMeta meta;
  meta.name = in.read_string();
  const auto nfields = in.read<std::uint32_t>();
  for (std::uint32_t f = 0; f < nfields; ++f) {
    meta.scalar_fields.push_back(in.read_string());
  }
  const auto nsteps = in.read<std::uint32_t>();
  for (std::uint32_t s = 0; s < nsteps; ++s) {
    TimestepInfo step;
    step.time = in.read<double>();
    step.filename = in.read_string();
    const auto nblocks = in.read<std::uint32_t>();
    for (std::uint32_t b = 0; b < nblocks; ++b) {
      BlockInfo block;
      block.id = in.read<std::int32_t>();
      block.ni = in.read<std::int32_t>();
      block.nj = in.read<std::int32_t>();
      block.nk = in.read<std::int32_t>();
      block.bounds = deserialize_aabb(in);
      block.offset = in.read<std::uint64_t>();
      block.size = in.read<std::uint64_t>();
      step.blocks.push_back(block);
    }
    meta.steps.push_back(std::move(step));
  }
  return meta;
}

// ---------------------------------------------------------------------------
// file helpers
// ---------------------------------------------------------------------------

void write_file(const std::string& path, const util::ByteBuffer& buffer) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_file: cannot open '" + path + "'");
  }
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
  if (!out) {
    throw std::runtime_error("write_file: short write to '" + path + "'");
  }
}

util::ByteBuffer read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("read_file: cannot open '" + path + "'");
  }
  const auto size = static_cast<std::uint64_t>(in.tellg());
  return read_file_range(path, 0, size);
}

util::ByteBuffer read_file_range(const std::string& path, std::uint64_t offset,
                                 std::uint64_t size) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_file_range: cannot open '" + path + "'");
  }
  in.seekg(static_cast<std::streamoff>(offset));
  std::vector<std::byte> data(size);
  in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(in.gcount()) != size) {
    throw std::runtime_error("read_file_range: short read from '" + path + "'");
  }
  return util::ByteBuffer(std::move(data));
}

// ---------------------------------------------------------------------------
// DatasetWriter
// ---------------------------------------------------------------------------

DatasetWriter::DatasetWriter(std::string directory, std::string name)
    : directory_(std::move(directory)) {
  meta_.name = std::move(name);
  std::filesystem::create_directories(directory_);
}

void DatasetWriter::begin_timestep(double time) {
  if (in_step_) {
    throw std::logic_error("DatasetWriter: begin_timestep while a step is open");
  }
  in_step_ = true;
  step_payload_.clear();
  TimestepInfo step;
  step.time = time;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "step_%04zu.vmb", meta_.steps.size());
  step.filename = buffer;
  meta_.steps.push_back(std::move(step));
}

void DatasetWriter::add_block(const StructuredBlock& block) {
  if (!in_step_) {
    throw std::logic_error("DatasetWriter: add_block outside a time step");
  }
  auto& step = meta_.steps.back();

  BlockInfo info;
  info.id = block.block_id();
  info.ni = block.ni();
  info.nj = block.nj();
  info.nk = block.nk();
  info.bounds = block.bounds();
  info.offset = step_payload_.size();

  block.serialize(step_payload_);
  info.size = step_payload_.size() - info.offset;
  step.blocks.push_back(info);

  if (meta_.steps.size() == 1) {
    // Record field inventory from the first block.
    if (meta_.scalar_fields.empty()) {
      meta_.scalar_fields = block.scalar_names();
    }
  }
}

void DatasetWriter::end_timestep() {
  if (!in_step_) {
    throw std::logic_error("DatasetWriter: end_timestep without begin_timestep");
  }
  write_file(directory_ + "/" + meta_.steps.back().filename, step_payload_);
  step_payload_.clear();
  in_step_ = false;
}

DatasetMeta DatasetWriter::finish() {
  if (in_step_) {
    throw std::logic_error("DatasetWriter: finish with an open time step");
  }
  if (finished_) {
    throw std::logic_error("DatasetWriter: finish called twice");
  }
  finished_ = true;
  util::ByteBuffer index;
  meta_.serialize(index);
  write_file(directory_ + "/dataset.vmi", index);
  return meta_;
}

// ---------------------------------------------------------------------------
// DatasetReader
// ---------------------------------------------------------------------------

DatasetReader::DatasetReader(std::string directory) : directory_(std::move(directory)) {
  auto index = read_file(directory_ + "/dataset.vmi");
  meta_ = DatasetMeta::deserialize(index);
}

util::ByteBuffer DatasetReader::read_block_bytes(int step, int block) const {
  const auto& step_info = meta_.steps.at(static_cast<std::size_t>(step));
  const auto& block_info = step_info.blocks.at(static_cast<std::size_t>(block));
  return read_file_range(directory_ + "/" + step_info.filename, block_info.offset,
                         block_info.size);
}

StructuredBlock DatasetReader::read_block(int step, int block) const {
  auto bytes = read_block_bytes(step, block);
  return StructuredBlock::deserialize(bytes);
}

}  // namespace vira::grid
