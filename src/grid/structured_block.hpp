#pragma once

/// \file structured_block.hpp
/// Curvilinear structured grid block — the unit of CFD data in Viracocha.
///
/// The paper's datasets are "multi-block data sets consisting of several
/// curvilinear blocks" (Sec. 6.1). A block is a logically Cartesian grid of
/// ni×nj×nk nodes; every node carries a world position, a velocity vector
/// and any number of named scalar fields (pressure, density, λ2, ...).
/// Storage is float (as CFD solver output typically is); all computations
/// are performed in double.
///
/// Storage is structure-of-arrays (DESIGN.md §13): positions and velocity
/// are split into per-component arrays (x[], y[], z[]) and every named
/// scalar is its own array, all 64-byte aligned and padded via
/// grid::FieldStore so the extraction kernels vectorize. Scalar fields are
/// addressed either by name (convenience, hash lookup) or by an interned
/// FieldId handle (hot loops — plain array index, no lookup).
///
/// A block serializes to a flat byte blob — that blob is exactly the "data
/// item" the DMS caches and ships between nodes without understanding its
/// structure (Sec. 4: raw data and manipulation methods are separated).
/// The wire layout is unchanged from the array-of-structs era (interleaved
/// xyz payloads, scalars in name-sorted order), so cached blobs and DST
/// trajectories are byte-identical; SoA is a memory layout only.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "grid/field_store.hpp"
#include "math/aabb.hpp"
#include "math/mat3.hpp"
#include "math/vec3.hpp"
#include "util/byte_buffer.hpp"

namespace vira::grid {

using math::Aabb;
using math::Mat3;
using math::Vec3;

/// Trilinear corner weights of local coordinates (u,v,w), marching-cubes
/// corner order — the interpolation basis used by interpolate_* and by the
/// batched gather path in BlockSampler.
void trilinear_weights(double u, double v, double w, std::array<double, 8>& weights);

/// Local coordinates inside one hexahedral cell, each in [0,1].
struct CellCoord {
  int i = 0;
  int j = 0;
  int k = 0;
  double u = 0.0;
  double v = 0.0;
  double w = 0.0;
};

class StructuredBlock {
 public:
  StructuredBlock() = default;
  StructuredBlock(int ni, int nj, int nk);

  /// --- topology -----------------------------------------------------------
  int ni() const noexcept { return ni_; }
  int nj() const noexcept { return nj_; }
  int nk() const noexcept { return nk_; }
  std::int64_t node_count() const noexcept {
    return static_cast<std::int64_t>(ni_) * nj_ * nk_;
  }
  std::int64_t cell_count() const noexcept {
    return static_cast<std::int64_t>(ni_ - 1) * (nj_ - 1) * (nk_ - 1);
  }
  int cells_i() const noexcept { return ni_ - 1; }
  int cells_j() const noexcept { return nj_ - 1; }
  int cells_k() const noexcept { return nk_ - 1; }

  std::int64_t node_index(int i, int j, int k) const noexcept {
    return (static_cast<std::int64_t>(k) * nj_ + j) * ni_ + i;
  }

  /// --- identity -----------------------------------------------------------
  int block_id() const noexcept { return block_id_; }
  void set_block_id(int id) noexcept { block_id_ = id; }
  double time() const noexcept { return time_; }
  void set_time(double t) noexcept { time_ = t; }

  /// --- geometry -----------------------------------------------------------
  Vec3 point(int i, int j, int k) const {
    const auto idx = node_index(i, j, k);
    return {px_[idx], py_[idx], pz_[idx]};
  }
  Vec3 point_at(std::int64_t node) const {
    return {px_[node], py_[node], pz_[node]};
  }
  void set_point(int i, int j, int k, const Vec3& p) {
    const auto idx = node_index(i, j, k);
    px_[idx] = static_cast<float>(p.x);
    py_[idx] = static_cast<float>(p.y);
    pz_[idx] = static_cast<float>(p.z);
    bounds_dirty_ = true;
  }

  /// SoA position components (64-byte aligned, padded; see FieldStore).
  std::span<const float> points_x() const { return px_.span(); }
  std::span<const float> points_y() const { return py_.span(); }
  std::span<const float> points_z() const { return pz_.span(); }

  /// Bounding box over all nodes (cached; recomputed after edits).
  const Aabb& bounds() const;

  /// --- velocity -----------------------------------------------------------
  Vec3 velocity(int i, int j, int k) const {
    const auto idx = node_index(i, j, k);
    return {vx_[idx], vy_[idx], vz_[idx]};
  }
  Vec3 velocity_at(std::int64_t node) const {
    return {vx_[node], vy_[node], vz_[node]};
  }
  void set_velocity(int i, int j, int k, const Vec3& u) {
    const auto idx = node_index(i, j, k);
    vx_[idx] = static_cast<float>(u.x);
    vy_[idx] = static_cast<float>(u.y);
    vz_[idx] = static_cast<float>(u.z);
  }

  /// SoA velocity components.
  std::span<const float> velocity_x() const { return vx_.span(); }
  std::span<const float> velocity_y() const { return vy_.span(); }
  std::span<const float> velocity_z() const { return vz_.span(); }

  /// --- named node scalars --------------------------------------------------
  bool has_scalar(const std::string& name) const { return fields_.has(name); }
  /// Names in sorted order (also the serialization order).
  std::vector<std::string> scalar_names() const { return fields_.sorted_names(); }

  /// Interned handle for a field, or kInvalidFieldId when absent. Resolve
  /// once outside the loop, then use the FieldId overloads per node.
  FieldId field_id(const std::string& name) const { return fields_.find(name); }
  /// Interns `name`, creating a zero-filled field on first use.
  FieldId ensure_field(const std::string& name) { return fields_.ensure(name); }

  std::span<float> field_values(FieldId id) { return fields_.values(id); }
  std::span<const float> field_values(FieldId id) const { return fields_.values(id); }

  /// Creates the field (zero-filled) if absent. The span stays valid for
  /// the lifetime of the block (field arrays never move once created).
  std::span<float> scalar(const std::string& name) {
    return fields_.values(fields_.ensure(name));
  }
  std::span<const float> scalar(const std::string& name) const;

  float scalar_at(FieldId id, int i, int j, int k) const {
    return fields_.values(id)[node_index(i, j, k)];
  }
  void set_scalar_at(FieldId id, int i, int j, int k, float value) {
    fields_.values(id)[node_index(i, j, k)] = value;
  }
  float scalar_at(const std::string& name, int i, int j, int k) const {
    return scalar(name)[node_index(i, j, k)];
  }
  void set_scalar_at(const std::string& name, int i, int j, int k, float value) {
    scalar(name)[node_index(i, j, k)] = value;
  }
  /// Min/max of a scalar field over the block.
  std::pair<float, float> scalar_range(const std::string& name) const;

  /// --- cell access ----------------------------------------------------------
  /// Corner node indices of cell (ci,cj,ck) in marching-cubes order:
  /// 0:(i,j,k) 1:(i+1,j,k) 2:(i+1,j+1,k) 3:(i,j+1,k)
  /// 4:(i,j,k+1) 5:(i+1,j,k+1) 6:(i+1,j+1,k+1) 7:(i,j+1,k+1)
  std::array<std::int64_t, 8> cell_corners(int ci, int cj, int ck) const;

  Aabb cell_bounds(int ci, int cj, int ck) const;

  /// --- interpolation ----------------------------------------------------------
  /// Trilinear position inside a cell.
  Vec3 interpolate_position(const CellCoord& c) const;
  /// Trilinear velocity inside a cell.
  Vec3 interpolate_velocity(const CellCoord& c) const;
  /// Trilinear scalar inside a cell.
  double interpolate_scalar(FieldId id, const CellCoord& c) const;
  double interpolate_scalar(const std::string& name, const CellCoord& c) const {
    return interpolate_scalar(require_field(name), c);
  }

  /// Inverts the trilinear map of cell (ci,cj,ck): finds (u,v,w) with
  /// X(u,v,w) = p via Newton iteration. Returns the coordinate if the point
  /// lies inside the cell (within `eps` in local space), nullopt otherwise.
  std::optional<CellCoord> world_to_local(int ci, int cj, int ck, const Vec3& p,
                                          double eps = 1e-9) const;

  /// --- derivatives --------------------------------------------------------
  /// Velocity gradient tensor G(i,j) = ∂u_i/∂x_j at a node, computed from
  /// computational-space finite differences and the inverse metric Jacobian
  /// (central differences inside, one-sided at block faces).
  Mat3 velocity_gradient(int i, int j, int k) const;

  /// Spatial gradient ∇s of a node scalar at a node (same metric-term
  /// scheme as velocity_gradient). Drives isosurface normals.
  Vec3 scalar_gradient(FieldId id, int i, int j, int k) const;
  Vec3 scalar_gradient(const std::string& name, int i, int j, int k) const {
    return scalar_gradient(require_field(name), i, j, k);
  }

  /// --- multiresolution (Sec. 5.3) -------------------------------------------
  /// Subsampled copy taking every `stride`-th node in each direction
  /// (boundary nodes always kept) — the coarse level for progressive
  /// computation.
  StructuredBlock coarsened(int stride) const;

  /// --- serialization ----------------------------------------------------------
  void serialize(util::ByteBuffer& out) const;
  static StructuredBlock deserialize(util::ByteBuffer& in);
  /// Zero-copy variant: decodes through a non-owning cursor (e.g. straight
  /// over a cached DMS blob), de-interleaving payloads directly into the
  /// aligned SoA arrays without intermediate vector copies.
  static StructuredBlock deserialize(util::ByteReader& in);

  /// Bytes the serialized form occupies (header + payloads).
  std::uint64_t serialized_size() const;

 private:
  Mat3 position_jacobian(int i, int j, int k) const;
  /// field_id that throws std::out_of_range for unknown names (the
  /// contract the old map-based const scalar() accessor had).
  FieldId require_field(const std::string& name) const;

  int ni_ = 0;
  int nj_ = 0;
  int nk_ = 0;
  int block_id_ = -1;
  double time_ = 0.0;
  AlignedFloats px_, py_, pz_;
  AlignedFloats vx_, vy_, vz_;
  FieldStore fields_;

  mutable Aabb bounds_;
  mutable bool bounds_dirty_ = true;
};

}  // namespace vira::grid
