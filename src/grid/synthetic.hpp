#pragma once

/// \file synthetic.hpp
/// Synthetic stand-ins for the paper's proprietary CFD datasets.
///
/// *Engine* (Sec. 6.1): inflow of a 4-valve combustion engine — 63 time
/// steps, 23 curvilinear blocks. We build a cylinder (1 core block + 22
/// annular sector blocks) filled with an unsteady swirl/tumble flow: an
/// axial intake jet, a time-modulated swirl about the cylinder axis, a
/// tumble vortex and two intake-port vortices (Lamb–Oseen).
///
/// *Propfan* (Sec. 6.1): counter-rotating propfan — 50 time steps, 144
/// blocks (12 passages × 12 axial segments around an annulus). The flow is
/// an axial freestream plus two counter-rotating blade-row swirl systems
/// and rotating blade-tip vortices, so streamed λ2 extraction finds vortex
/// tubes exactly where the paper's Figure 5 shows them.
///
/// Node resolution is configurable (the originals were 1.12 GB / 19.5 GB;
/// this reproduction scales resolution down, keeping block and time-step
/// counts — see DESIGN.md).

#include <cstdint>
#include <string>

#include "grid/analytic_fields.hpp"
#include "grid/dataset_io.hpp"

namespace vira::grid {

struct GeneratorConfig {
  std::string directory;
  int timesteps = 0;  ///< 0 = dataset default (63 Engine / 50 Propfan)
  int ni = 0;         ///< per-block node counts; 0 = dataset default
  int nj = 0;
  int nk = 0;
  double dt = 0.004;  ///< physical time between steps [s]
  std::uint64_t seed = 42;
};

/// Generates the Engine dataset (23 blocks/step). Returns its metadata.
DatasetMeta generate_engine(const GeneratorConfig& config);

/// Generates the Propfan dataset (144 blocks/step). Returns its metadata.
DatasetMeta generate_propfan(const GeneratorConfig& config);

/// The analytic flows behind the datasets, exposed so tests can compare
/// grid-sampled data against ground truth.
std::shared_ptr<const FlowField> make_engine_flow(std::uint64_t seed = 42);
std::shared_ptr<const FlowField> make_propfan_flow(std::uint64_t seed = 42);

/// Generates a single-block Cartesian box dataset sampled from `field` —
/// the small fixture most unit tests use.
DatasetMeta generate_box(const std::string& directory, const FlowField& field, int timesteps,
                         int ni, int nj, int nk, const Vec3& lo, const Vec3& hi,
                         double dt = 0.05, int nblocks = 1);

/// Fills one block's velocity/pressure/density node fields from `field` at
/// time `t` (geometry must already be set).
void sample_fields(StructuredBlock& block, const FlowField& field, double t);

}  // namespace vira::grid
