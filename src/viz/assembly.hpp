#pragma once

/// \file assembly.hpp
/// Client-side assembly of streamed fragments (paper Sec. 5.2: "Over
/// there, they come in one by one, are assembled, and prepared just in
/// time for the next rendering loop").
///
/// GeometryCollector consumes Packets and maintains the merged picture:
/// plain mesh fragments accumulate; progressive fragments (level-tagged)
/// replace the geometry of coarser levels; polylines accumulate; the
/// summary (if any) is kept for bookkeeping.

#include <map>

#include "algo/geometry.hpp"
#include "algo/payloads.hpp"
#include "viz/session.hpp"

namespace vira::viz {

class GeometryCollector {
 public:
  /// Consumes a kPartial / kFinal packet (others are ignored).
  /// Returns true if the packet carried geometry.
  bool consume(Packet& packet) {
    if (packet.kind != Packet::Kind::kPartial && packet.kind != Packet::Kind::kFinal) {
      return false;
    }
    auto fragment = algo::decode_fragment(packet.payload);
    if (fragment.kind == algo::kPayloadMesh) {
      if (fragment.level < 0) {
        mesh_.merge(fragment.mesh);
      } else {
        levels_[fragment.level].merge(fragment.mesh);
        best_level_ = std::max(best_level_, fragment.level);
      }
      ++fragments_;
      return true;
    }
    if (fragment.kind == algo::kPayloadLines) {
      lines_.merge(fragment.lines);
      ++fragments_;
      return true;
    }
    if (fragment.kind == algo::kPayloadSummary) {
      summary_triangles_ = fragment.triangles;
      summary_active_cells_ = fragment.active_cells;
      have_summary_ = true;
    }
    return false;
  }

  /// Current renderable mesh: the finest progressive level received so
  /// far, merged with all non-progressive fragments.
  algo::TriangleMesh current_mesh() const {
    algo::TriangleMesh result = mesh_;
    auto it = levels_.find(best_level_);
    if (it != levels_.end()) {
      result.merge(it->second);
    }
    return result;
  }

  const algo::TriangleMesh& flat_mesh() const { return mesh_; }
  const algo::PolylineSet& lines() const { return lines_; }
  const std::map<int, algo::TriangleMesh>& levels() const { return levels_; }

  std::size_t fragment_count() const { return fragments_; }
  bool have_summary() const { return have_summary_; }
  std::uint64_t summary_triangles() const { return summary_triangles_; }
  std::uint64_t summary_active_cells() const { return summary_active_cells_; }

 private:
  algo::TriangleMesh mesh_;
  algo::PolylineSet lines_;
  std::map<int, algo::TriangleMesh> levels_;
  int best_level_ = -1;
  std::size_t fragments_ = 0;
  bool have_summary_ = false;
  std::uint64_t summary_triangles_ = 0;
  std::uint64_t summary_active_cells_ = 0;
};

}  // namespace vira::viz
