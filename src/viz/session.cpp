#include "viz/session.hpp"

#include "util/log.hpp"

namespace vira::viz {

std::optional<Packet> ResultStream::next(std::chrono::milliseconds timeout) {
  return queue_.pop_for(timeout);
}

core::CommandStats ResultStream::wait(std::vector<util::ByteBuffer>* fragments,
                                      std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      throw std::runtime_error("ResultStream::wait: timed out");
    }
    auto packet = queue_.pop_for(std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now));
    if (!packet) {
      if (queue_.closed()) {
        // Closed-and-drained: no terminal packet is ever coming (link
        // died, session closed). pop_for returns immediately in that
        // state, so looping here used to busy-spin at 100% CPU for the
        // whole timeout — fail fast instead.
        throw std::runtime_error("ResultStream::wait: stream closed before completion");
      }
      continue;
    }
    switch (packet->kind) {
      case Packet::Kind::kPartial:
      case Packet::Kind::kFinal:
        if (fragments != nullptr) {
          fragments->push_back(std::move(packet->payload));
        }
        break;
      case Packet::Kind::kComplete:
        return packet->stats;
      case Packet::Kind::kRejected: {
        // Terminal without a kTagComplete: synthesize failed stats so
        // callers see a uniform CommandStats either way.
        VIRA_WARN("viz") << "request " << request_id_ << " rejected: " << packet->error;
        core::CommandStats stats;
        stats.request_id = request_id_;
        stats.success = false;
        stats.error = packet->error;
        return stats;
      }
      case Packet::Kind::kError:
        VIRA_WARN("viz") << "request " << request_id_ << " error: " << packet->error;
        break;
      case Packet::Kind::kProgress:
      case Packet::Kind::kDegraded:
        break;
    }
  }
}

ExtractionSession::ExtractionSession(std::shared_ptr<comm::ClientLink> link)
    : link_(std::move(link)) {
  receiver_ = std::thread([this] { receive_loop(); });
}

ExtractionSession::~ExtractionSession() { close(); }

void ExtractionSession::close() {
  if (running_.exchange(false)) {
    {
      // Stop admitting new streams before the link goes down: a submit
      // racing this close either registers first (and is closed out by the
      // loop below) or sees accepting_ == false and is rejected locally.
      std::lock_guard<std::mutex> lock(streams_mutex_);
      accepting_ = false;
    }
    link_->close();
    if (receiver_.joinable()) {
      receiver_.join();
    }
    std::lock_guard<std::mutex> lock(streams_mutex_);
    for (auto& [id, stream] : streams_) {
      stream->queue_.close();
    }
  }
}

std::shared_ptr<ResultStream> ExtractionSession::submit(const std::string& command,
                                                        const util::ParamList& params) {
  core::CommandRequest request;
  request.request_id = next_request_id_.fetch_add(1);
  request.command = command;
  request.params = params;

  auto span = obs::Tracer::instance().start("client.request", request.request_id,
                                            obs::kClientRank, /*parent_id=*/0);
  request.parent_span = span.context().span_id;

  auto stream = std::shared_ptr<ResultStream>(new ResultStream(request.request_id));
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    if (!accepting_) {
      // Session already closed: the receiver thread is gone, so a stream
      // registered now would never terminate and wait() would hang (the
      // link send below would be silently dropped, too). Answer locally
      // with a terminal rejection instead. Checked under the same lock
      // that registers the stream, so a racing close() either sees the
      // registration (and closes the queue) or we see accepting_ false.
      Packet rejected{Packet::Kind::kRejected, {}, {}, 0.0, {}, {}, 0, 0.0};
      rejected.error = "session closed";
      stream->queue_.push(std::move(rejected));
      stream->queue_.close();
      return stream;
    }
    streams_[request.request_id] = stream;
    submit_times_[request.request_id] = std::chrono::steady_clock::now();
    if (span.active()) {
      request_spans_[request.request_id] = std::move(span);
    }
  }

  util::ByteBuffer payload;
  request.serialize(payload);
  comm::Message msg;
  msg.tag = core::kTagSubmit;
  msg.payload = std::move(payload);
  link_->send(std::move(msg));
  return stream;
}

void ExtractionSession::cancel(std::uint64_t request_id) {
  util::ByteBuffer payload;
  payload.write<std::uint64_t>(request_id);
  comm::Message msg;
  msg.tag = core::kTagCancel;
  msg.payload = std::move(payload);
  link_->send(std::move(msg));
}

void ExtractionSession::receive_loop() {
  while (running_) {
    auto msg = link_->recv(std::chrono::milliseconds(50));
    if (!msg) {
      if (link_->closed()) {
        break;
      }
      continue;
    }

    Packet packet{Packet::Kind::kComplete, {}, {}, 0.0, {}, {}, 0, 0.0};
    std::uint64_t request_id = 0;

    switch (msg->tag) {
      case core::kTagPartial:
      case core::kTagFinal: {
        packet.kind = msg->tag == core::kTagPartial ? Packet::Kind::kPartial
                                                    : Packet::Kind::kFinal;
        packet.header = core::FragmentHeader::deserialize(msg->payload);
        const auto body_size = msg->payload.read<std::uint64_t>();
        std::vector<std::byte> body(body_size);
        msg->payload.read_raw(body.data(), body_size);
        packet.payload = util::ByteBuffer(std::move(body));
        request_id = packet.header.request_id;
        break;
      }
      case core::kTagProgress: {
        packet.kind = Packet::Kind::kProgress;
        request_id = msg->payload.read<std::uint64_t>();
        packet.progress = msg->payload.read<double>();
        break;
      }
      case core::kTagError: {
        packet.kind = Packet::Kind::kError;
        request_id = msg->payload.read<std::uint64_t>();
        packet.error = msg->payload.read_string();
        break;
      }
      case core::kTagComplete: {
        packet.kind = Packet::Kind::kComplete;
        packet.stats = core::CommandStats::deserialize(msg->payload);
        request_id = packet.stats.request_id;
        break;
      }
      case core::kTagDegraded: {
        packet.kind = Packet::Kind::kDegraded;
        request_id = msg->payload.read<std::uint64_t>();
        packet.retries = msg->payload.read<std::uint32_t>();
        break;
      }
      case core::kTagRejected: {
        packet.kind = Packet::Kind::kRejected;
        request_id = msg->payload.read<std::uint64_t>();
        packet.error = msg->payload.read_string();
        break;
      }
      default:
        VIRA_WARN("viz") << "unknown packet tag " << msg->tag;
        continue;
    }

    std::shared_ptr<ResultStream> stream;
    {
      std::lock_guard<std::mutex> lock(streams_mutex_);
      auto it = streams_.find(request_id);
      if (it != streams_.end()) {
        stream = it->second;
        auto time_it = submit_times_.find(request_id);
        if (time_it != submit_times_.end()) {
          packet.client_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - time_it->second)
                  .count();
        }
      }
    }
    if (!stream) {
      continue;
    }
    const bool is_data =
        packet.kind == Packet::Kind::kPartial || packet.kind == Packet::Kind::kFinal;
    if (is_data && stream->first_data_seconds_.load() < 0.0) {
      stream->first_data_seconds_.store(packet.client_seconds);
    }
    if (packet.kind == Packet::Kind::kDegraded) {
      stream->retry_count_.store(packet.retries);
      VIRA_WARN("viz") << "request " << request_id << " degraded (retry " << packet.retries
                       << "): work group re-formed, stream continues";
    }
    const bool complete =
        packet.kind == Packet::Kind::kComplete || packet.kind == Packet::Kind::kRejected;
    stream->queue_.push(std::move(packet));
    if (complete) {
      std::lock_guard<std::mutex> lock(streams_mutex_);
      streams_.erase(request_id);
      submit_times_.erase(request_id);
      request_spans_.erase(request_id);  // ends the client.request span
      stream->queue_.close();
    }
  }
  // Link gone: close every stream so waiters unblock.
  std::lock_guard<std::mutex> lock(streams_mutex_);
  for (auto& [id, stream] : streams_) {
    stream->queue_.close();
  }
}

}  // namespace vira::viz
