#pragma once

/// \file session.hpp
/// Client-side extraction manager (the role ViSTA FlowLib's
/// ExtractionManager plays in paper Fig. 2).
///
/// An ExtractionSession sits on a ClientLink (in-process or TCP), submits
/// commands, and demultiplexes incoming packets into per-request
/// ResultStreams. A background receiver thread keeps draining the link so
/// streamed fragments arrive while the render loop (or bench harness) does
/// other work — the paper's "they come in one by one, are assembled, and
/// prepared just in time for the next rendering loop".

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "comm/client_link.hpp"
#include "core/protocol.hpp"
#include "obs/tracer.hpp"
#include "util/blocking_queue.hpp"
#include "util/param_list.hpp"

namespace vira::viz {

/// One delivery from the backend.
struct Packet {
  enum class Kind { kPartial, kFinal, kProgress, kError, kComplete, kDegraded, kRejected };
  Kind kind;
  core::FragmentHeader header;       ///< valid for kPartial / kFinal
  util::ByteBuffer payload;          ///< fragment body (header stripped)
  double progress = 0.0;             ///< valid for kProgress
  std::string error;                 ///< valid for kError / kRejected (reason)
  core::CommandStats stats;          ///< valid for kComplete
  std::uint32_t retries = 0;         ///< valid for kDegraded
  double client_seconds = 0.0;       ///< receive time relative to submission
};

/// Per-request stream of packets; ends with kComplete (or kError followed
/// by kComplete), or with a single kRejected when admission control
/// refused the submission (no kTagComplete follows a rejection).
class ResultStream {
 public:
  /// Next packet; nullopt on timeout or after the stream finished and
  /// drained.
  std::optional<Packet> next(std::chrono::milliseconds timeout = std::chrono::milliseconds(30000));

  /// Drains everything up to completion; returns the final CommandStats.
  /// Partial/final payload fragments are appended to `fragments` if given.
  core::CommandStats wait(std::vector<util::ByteBuffer>* fragments = nullptr,
                          std::chrono::milliseconds timeout = std::chrono::milliseconds(300000));

  std::uint64_t request_id() const { return request_id_; }
  /// Seconds from submission until the first kPartial/kFinal arrived at the
  /// client (client-side latency; -1 before any data packet).
  double first_data_seconds() const { return first_data_seconds_.load(); }

  /// True once the backend reported that it lost a worker mid-request and
  /// re-formed the work group (the request keeps streaming; fragments stay
  /// exactly-once). Mirrors CommandStats::degraded() but is visible while
  /// the request is still in flight.
  bool degraded() const { return retry_count_.load() > 0; }
  /// Work-group re-formations reported for this request so far.
  std::uint32_t retry_count() const { return retry_count_.load(); }

 private:
  friend class ExtractionSession;
  explicit ResultStream(std::uint64_t request_id) : request_id_(request_id) {}

  std::uint64_t request_id_;
  util::BlockingQueue<Packet> queue_;
  std::atomic<double> first_data_seconds_{-1.0};
  std::atomic<std::uint32_t> retry_count_{0};
};

class ExtractionSession {
 public:
  explicit ExtractionSession(std::shared_ptr<comm::ClientLink> link);
  ~ExtractionSession();
  ExtractionSession(const ExtractionSession&) = delete;
  ExtractionSession& operator=(const ExtractionSession&) = delete;

  /// Submits a command; the returned stream delivers its packets.
  std::shared_ptr<ResultStream> submit(const std::string& command,
                                       const util::ParamList& params);

  /// Requests cancellation of an in-flight command.
  void cancel(std::uint64_t request_id);

  void close();

 private:
  void receive_loop();

  std::shared_ptr<comm::ClientLink> link_;
  std::thread receiver_;
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> next_request_id_{1};

  std::mutex streams_mutex_;
  /// Cleared (under streams_mutex_) at the start of close(): submits after
  /// that are answered locally with a "session closed" rejection instead
  /// of registering a stream no receiver will ever terminate.
  bool accepting_ = true;
  std::map<std::uint64_t, std::shared_ptr<ResultStream>> streams_;
  std::map<std::uint64_t, std::chrono::steady_clock::time_point> submit_times_;
  /// Open "client.request" spans (submission → kTagComplete); their ids
  /// ride in CommandRequest::parent_span so the backend trace stitches
  /// under the client's view of the request.
  std::map<std::uint64_t, obs::ActiveSpan> request_spans_;
};

}  // namespace vira::viz
