// Portable kernel TU: baseline instruction set (SSE2 on x86-64), relying
// on the compiler's auto-vectorizer at the flags CMake pins for this file.
#define VIRA_SIMD_NS generic
#include "simd/kernels.inl"
