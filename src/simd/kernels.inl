/// \file kernels.inl
/// Kernel bodies, compiled once per instruction-set TU: kernels_generic.cpp
/// (portable flags) and kernels_avx2.cpp (-mavx2 -mfma) both include this
/// file after defining VIRA_SIMD_NS. The inner loops are written as
/// straight-line double arithmetic over SoA pointers so the compiler's
/// auto-vectorizer carries them onto whatever vector width the TU targets.
/// The trig eigen-solve is scalar-per-lane in the generic TU; the avx2 TU
/// defines VIRA_SIMD_FAST_EIGEN to route it through fastmath::
/// eigen_mid_sym3_batch (the -ffast-math libmvec TU) instead.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "simd/kernels.hpp"

namespace vira::simd::VIRA_SIMD_NS {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Middle eigenvalue of a symmetric 3×3 matrix from its six unique
/// entries — the analytic trig method of math::eigenvalues_sym3, kept
/// formula-identical so scalar and SIMD paths agree to rounding error.
inline double eigen_mid_sym3(double a00, double a11, double a22, double a01, double a02,
                             double a12) {
  const double off = a01 * a01 + a02 * a02 + a12 * a12;
  if (off == 0.0) {
    const double lo = std::min(a00, std::min(a11, a22));
    const double hi = std::max(a00, std::max(a11, a22));
    return a00 + a11 + a22 - lo - hi;
  }
  const double q = (a00 + a11 + a22) / 3.0;
  const double b00 = a00 - q;
  const double b11 = a11 - q;
  const double b22 = a22 - q;
  const double p2 = b00 * b00 + b11 * b11 + b22 * b22 + 2.0 * off;
  const double p = std::sqrt(p2 / 6.0);
  const double inv_p = 1.0 / p;
  const double c00 = b00 * inv_p;
  const double c11 = b11 * inv_p;
  const double c22 = b22 * inv_p;
  const double c01 = a01 * inv_p;
  const double c02 = a02 * inv_p;
  const double c12 = a12 * inv_p;
  const double half_det =
      0.5 * (c00 * (c11 * c22 - c12 * c12) - c01 * (c01 * c22 - c12 * c02) +
             c02 * (c01 * c12 - c11 * c02));
  const double r = std::clamp(half_det, -1.0, 1.0);
  const double phi = std::acos(r) / 3.0;
  const double e2 = q + 2.0 * p * std::cos(phi);
  const double e0 = q + 2.0 * p * std::cos(phi + 2.0 * kPi / 3.0);
  return 3.0 * q - e0 - e2;
}

/// Six unique entries of A = S²+Q² for the velocity-gradient tensor at one
/// node. Neighbor samples come as absolute node indices per axis (already
/// clamped at block faces) with the matching inverse step sizes, so one
/// body serves interior vector lanes and boundary columns alike.
struct SymEntries {
  double a00, a11, a22, a01, a02, a12;
};

inline SymEntries node_a_entries(const GridView& g, std::int64_t ilo, std::int64_t ihi,
                                 double inv_hi, std::int64_t jlo, std::int64_t jhi,
                                 double inv_hj, std::int64_t klo, std::int64_t khi,
                                 double inv_hk) {
  // F = ∂u/∂ξ and J = ∂x/∂ξ, columns = computational axes (central
  // differences, one-sided at faces — same stencil as the scalar path).
  const double fx0 = (static_cast<double>(g.vx[ihi]) - g.vx[ilo]) * inv_hi;
  const double fy0 = (static_cast<double>(g.vy[ihi]) - g.vy[ilo]) * inv_hi;
  const double fz0 = (static_cast<double>(g.vz[ihi]) - g.vz[ilo]) * inv_hi;
  const double fx1 = (static_cast<double>(g.vx[jhi]) - g.vx[jlo]) * inv_hj;
  const double fy1 = (static_cast<double>(g.vy[jhi]) - g.vy[jlo]) * inv_hj;
  const double fz1 = (static_cast<double>(g.vz[jhi]) - g.vz[jlo]) * inv_hj;
  const double fx2 = (static_cast<double>(g.vx[khi]) - g.vx[klo]) * inv_hk;
  const double fy2 = (static_cast<double>(g.vy[khi]) - g.vy[klo]) * inv_hk;
  const double fz2 = (static_cast<double>(g.vz[khi]) - g.vz[klo]) * inv_hk;

  const double jx0 = (static_cast<double>(g.px[ihi]) - g.px[ilo]) * inv_hi;
  const double jy0 = (static_cast<double>(g.py[ihi]) - g.py[ilo]) * inv_hi;
  const double jz0 = (static_cast<double>(g.pz[ihi]) - g.pz[ilo]) * inv_hi;
  const double jx1 = (static_cast<double>(g.px[jhi]) - g.px[jlo]) * inv_hj;
  const double jy1 = (static_cast<double>(g.py[jhi]) - g.py[jlo]) * inv_hj;
  const double jz1 = (static_cast<double>(g.pz[jhi]) - g.pz[jlo]) * inv_hj;
  const double jx2 = (static_cast<double>(g.px[khi]) - g.px[klo]) * inv_hk;
  const double jy2 = (static_cast<double>(g.py[khi]) - g.py[klo]) * inv_hk;
  const double jz2 = (static_cast<double>(g.pz[khi]) - g.pz[klo]) * inv_hk;

  // J⁻¹ via adjugate/det (Mat3::inverse convention: singular → zeros).
  const double det = jx0 * (jy1 * jz2 - jy2 * jz1) - jx1 * (jy0 * jz2 - jy2 * jz0) +
                     jx2 * (jy0 * jz1 - jy1 * jz0);
  const double inv = det != 0.0 ? 1.0 / det : 0.0;
  const double i00 = (jy1 * jz2 - jy2 * jz1) * inv;
  const double i01 = (jx2 * jz1 - jx1 * jz2) * inv;
  const double i02 = (jx1 * jy2 - jx2 * jy1) * inv;
  const double i10 = (jy2 * jz0 - jy0 * jz2) * inv;
  const double i11 = (jx0 * jz2 - jx2 * jz0) * inv;
  const double i12 = (jx2 * jy0 - jx0 * jy2) * inv;
  const double i20 = (jy0 * jz1 - jy1 * jz0) * inv;
  const double i21 = (jx1 * jz0 - jx0 * jz1) * inv;
  const double i22 = (jx0 * jy1 - jx1 * jy0) * inv;

  // G = F · J⁻¹ (∂u_i/∂x_j).
  const double g00 = fx0 * i00 + fx1 * i10 + fx2 * i20;
  const double g01 = fx0 * i01 + fx1 * i11 + fx2 * i21;
  const double g02 = fx0 * i02 + fx1 * i12 + fx2 * i22;
  const double g10 = fy0 * i00 + fy1 * i10 + fy2 * i20;
  const double g11 = fy0 * i01 + fy1 * i11 + fy2 * i21;
  const double g12 = fy0 * i02 + fy1 * i12 + fy2 * i22;
  const double g20 = fz0 * i00 + fz1 * i10 + fz2 * i20;
  const double g21 = fz0 * i01 + fz1 * i11 + fz2 * i21;
  const double g22 = fz0 * i02 + fz1 * i12 + fz2 * i22;

  // S = (G+Gᵀ)/2, Q = (G−Gᵀ)/2, A = S²+Q² (symmetric).
  const double s01 = 0.5 * (g01 + g10);
  const double s02 = 0.5 * (g02 + g20);
  const double s12 = 0.5 * (g12 + g21);
  const double q01 = 0.5 * (g01 - g10);
  const double q02 = 0.5 * (g02 - g20);
  const double q12 = 0.5 * (g12 - g21);

  SymEntries a;
  a.a00 = g00 * g00 + s01 * s01 + s02 * s02 - (q01 * q01 + q02 * q02);
  a.a11 = s01 * s01 + g11 * g11 + s12 * s12 - (q01 * q01 + q12 * q12);
  a.a22 = s02 * s02 + s12 * s12 + g22 * g22 - (q02 * q02 + q12 * q12);
  a.a01 = g00 * s01 + s01 * g11 + s02 * s12 - q02 * q12;
  a.a02 = g00 * s02 + s01 * s12 + s02 * g22 + q01 * q12;
  a.a12 = s01 * s02 + g11 * s12 + s12 * g22 - q01 * q02;
  return a;
}

}  // namespace

std::pair<float, float> lambda2_field(const GridView& g, float* out) {
  const int ni = g.ni;
  const int nj = g.nj;
  const int nk = g.nk;
  // Row scratch for the six A entries plus the eigen results: pass A
  // (vectorized straight-line tensor math) fills it, pass B (the trig
  // eigen-solve) drains it.
  std::vector<double> scratch(static_cast<std::size_t>(ni) * 7);
  double* a00 = scratch.data();
  double* a11 = a00 + ni;
  double* a22 = a11 + ni;
  double* a01 = a22 + ni;
  double* a02 = a01 + ni;
  double* a12 = a02 + ni;
  double* mid = a12 + ni;

  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (int k = 0; k < nk; ++k) {
    const int klo = k > 0 ? k - 1 : k;
    const int khi = k < nk - 1 ? k + 1 : k;
    const double inv_hk = 1.0 / ((k > 0 ? 1 : 0) + (k < nk - 1 ? 1 : 0));
    for (int j = 0; j < nj; ++j) {
      const int jlo = j > 0 ? j - 1 : j;
      const int jhi = j < nj - 1 ? j + 1 : j;
      const double inv_hj = 1.0 / ((j > 0 ? 1 : 0) + (j < nj - 1 ? 1 : 0));

      const std::int64_t base = g.node_index(0, j, k);
      const std::int64_t bj_lo = g.node_index(0, jlo, k);
      const std::int64_t bj_hi = g.node_index(0, jhi, k);
      const std::int64_t bk_lo = g.node_index(0, j, klo);
      const std::int64_t bk_hi = g.node_index(0, j, khi);

      auto store = [&](int i, const SymEntries& a) {
        a00[i] = a.a00;
        a11[i] = a.a11;
        a22[i] = a.a22;
        a01[i] = a.a01;
        a02[i] = a.a02;
        a12[i] = a.a12;
      };

      // i-boundary columns (one-sided stencil) outside the vector loop.
      store(0, node_a_entries(g, base, base + 1, 1.0, bj_lo, bj_hi, inv_hj, bk_lo, bk_hi,
                              inv_hk));
      for (int i = 1; i < ni - 1; ++i) {
        store(i, node_a_entries(g, base + i - 1, base + i + 1, 0.5, bj_lo + i, bj_hi + i,
                                inv_hj, bk_lo + i, bk_hi + i, inv_hk));
      }
      if (ni > 1) {
        store(ni - 1, node_a_entries(g, base + ni - 2, base + ni - 1, 1.0, bj_lo + ni - 1,
                                     bj_hi + ni - 1, inv_hj, bk_lo + ni - 1, bk_hi + ni - 1,
                                     inv_hk));
      }

#if defined(VIRA_SIMD_FAST_EIGEN)
      fastmath::eigen_mid_sym3_batch(a00, a11, a22, a01, a02, a12, ni, mid);
#else
      for (int i = 0; i < ni; ++i) {
        mid[i] = eigen_mid_sym3(a00[i], a11[i], a22[i], a01[i], a02[i], a12[i]);
      }
#endif
      for (int i = 0; i < ni; ++i) {
        const float value = static_cast<float>(mid[i]);
        out[base + i] = value;
        lo = std::min(lo, value);
        hi = std::max(hi, value);
      }
    }
  }
  return {lo, hi};
}

void active_cell_mask(const float* n00, const float* n01, const float* n10, const float* n11,
                      int ncells, float iso, std::uint8_t* mask) {
  // Bitwise ORs (not ||) keep the loop branch-free so comparisons fuse
  // into vector masks. Predicate matches cell_is_active exactly:
  // any corner < iso AND any corner >= iso.
  for (int c = 0; c < ncells; ++c) {
    const unsigned below = static_cast<unsigned>(n00[c] < iso) |
                           static_cast<unsigned>(n00[c + 1] < iso) |
                           static_cast<unsigned>(n01[c] < iso) |
                           static_cast<unsigned>(n01[c + 1] < iso) |
                           static_cast<unsigned>(n10[c] < iso) |
                           static_cast<unsigned>(n10[c + 1] < iso) |
                           static_cast<unsigned>(n11[c] < iso) |
                           static_cast<unsigned>(n11[c + 1] < iso);
    const unsigned above = static_cast<unsigned>(n00[c] >= iso) |
                           static_cast<unsigned>(n00[c + 1] >= iso) |
                           static_cast<unsigned>(n01[c] >= iso) |
                           static_cast<unsigned>(n01[c + 1] >= iso) |
                           static_cast<unsigned>(n10[c] >= iso) |
                           static_cast<unsigned>(n10[c + 1] >= iso) |
                           static_cast<unsigned>(n11[c] >= iso) |
                           static_cast<unsigned>(n11[c + 1] >= iso);
    mask[c] = static_cast<std::uint8_t>(below & above);
  }
}

void eigen_mid_sym3_batch(const double* a00, const double* a11, const double* a22,
                          const double* a01, const double* a02, const double* a12, int n,
                          double* out) {
#if defined(VIRA_SIMD_FAST_EIGEN)
  fastmath::eigen_mid_sym3_batch(a00, a11, a22, a01, a02, a12, n, out);
#else
  for (int l = 0; l < n; ++l) {
    out[l] = eigen_mid_sym3(a00[l], a11[l], a22[l], a01[l], a02[l], a12[l]);
  }
#endif
}

void trilinear_gather(const float* values, const std::int64_t* idx, const double* w, int n,
                      double* out) {
  for (int l = 0; l < n; ++l) {
    const std::int64_t* id = idx + static_cast<std::size_t>(l) * 8;
    const double* wl = w + static_cast<std::size_t>(l) * 8;
    double s = 0.0;
    for (int c = 0; c < 8; ++c) {
      s += static_cast<double>(values[id[c]]) * wl[c];
    }
    out[l] = s;
  }
}

}  // namespace vira::simd::VIRA_SIMD_NS
