#include "simd/simd.hpp"

#include <atomic>

namespace vira::simd {

namespace {

Level detect_level_impl() {
#if defined(VIRA_SIMD_HAVE_AVX2) && (defined(__x86_64__) || defined(_M_X64))
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
  return Level::kGeneric;
}

std::atomic<Level>& active_level_storage() {
  static std::atomic<Level> level{detect_level()};
  return level;
}

std::atomic<Kernel>& default_kernel_storage() {
  static std::atomic<Kernel> kernel{Kernel::kSimd};
  return kernel;
}

}  // namespace

Level detect_level() {
  static const Level detected = detect_level_impl();
  return detected;
}

Level active_level() { return active_level_storage().load(std::memory_order_relaxed); }

void set_level(Level level) {
  if (level > detect_level()) {
    level = detect_level();
  }
  active_level_storage().store(level, std::memory_order_relaxed);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kGeneric:
      return "generic";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

Kernel default_kernel() { return default_kernel_storage().load(std::memory_order_relaxed); }

void set_default_kernel(Kernel kernel) {
  default_kernel_storage().store(kernel, std::memory_order_relaxed);
}

std::optional<Kernel> parse_kernel(std::string_view text) {
  if (text == "scalar") {
    return Kernel::kScalar;
  }
  if (text == "simd" || text == "auto") {
    return Kernel::kSimd;
  }
  return std::nullopt;
}

const char* kernel_name(Kernel kernel) {
  return kernel == Kernel::kScalar ? "scalar" : "simd";
}

}  // namespace vira::simd
