// AVX2+FMA kernel TU: same bodies as kernels_generic.cpp, compiled with
// -mavx2 -mfma (see simd/CMakeLists.txt). Only reached when
// simd::detect_level() confirms the CPU supports both, so no runtime
// illegal-instruction risk from the wider codegen. The eigen pass routes
// through the -ffast-math libmvec TU (kernels_eigen_fast.cpp) — the trig
// solve dominates λ2 otherwise.
#define VIRA_SIMD_NS avx2
#define VIRA_SIMD_FAST_EIGEN 1
#include "simd/kernels.inl"
