#pragma once

/// \file simd.hpp
/// Runtime dispatch shim for the vectorized extraction kernels
/// (DESIGN.md §13).
///
/// Two orthogonal knobs:
///  - Level: which *instruction set* the kernels run with. Detected once at
///    startup (AVX2+FMA on x86-64 when the CPU reports it, otherwise the
///    portable auto-vectorized baseline). Tests pin it to compare code
///    paths on one machine.
///  - Kernel: which *implementation* a command uses — the scalar reference
///    path (the original per-node code, kept as ground truth) or the SoA
///    SIMD kernels. Selected per command via the `kernel=` parameter, with
///    the process default settable by `--kernel=scalar|simd` on cli/server.

#include <optional>
#include <string_view>

namespace vira::simd {

/// Instruction-set tier the dispatched kernels execute at.
enum class Level {
  kGeneric,  // portable TU, compiler-autovectorized baseline (SSE2 on x86-64)
  kAvx2,     // AVX2+FMA TU (x86-64 only, runtime-detected)
};

/// Which implementation a command runs: the scalar reference path or the
/// SoA SIMD kernels.
enum class Kernel {
  kScalar,
  kSimd,
};

/// Highest Level this CPU supports (detected once, cached).
Level detect_level();

/// Level the dispatcher currently routes to (defaults to detect_level()).
Level active_level();
/// Pins the dispatch level; levels above detect_level() are clamped.
void set_level(Level level);

const char* level_name(Level level);

/// Process-wide default implementation choice (the --kernel flag).
Kernel default_kernel();
void set_default_kernel(Kernel kernel);

/// Parses a kernel knob value: "scalar" → kScalar, "simd"/"auto" → kSimd,
/// anything else → nullopt.
std::optional<Kernel> parse_kernel(std::string_view text);

const char* kernel_name(Kernel kernel);

}  // namespace vira::simd
