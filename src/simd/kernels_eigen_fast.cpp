/// \file kernels_eigen_fast.cpp
/// Vectorized trig eigen-solve for the avx2 kernels' pass B.
///
/// This TU (and only this TU) is compiled with -ffast-math so GCC lowers
/// std::acos / std::cos onto libmvec's AVX2 vector variants (_ZGVdN4v_*).
/// The loop body is branch-free — the scalar reference's off == 0 diagonal
/// shortcut and singular-p guard become arithmetic selects — so the whole
/// eigen-solve if-converts and runs four lanes per iteration. Results agree
/// with the strict-FP scalar formula to rounding error (the λ2 property
/// test pins the tolerance); bit-exactness is NOT promised here, which is
/// why the generic (fallback) namespace keeps the strict scalar loop.
///
/// Kept out of kernels.inl: -ffast-math must not leak into pass A (whose
/// subtraction stencils are formula-identical to the scalar path) or into
/// any TU linked into main() (GCC would add crtfastmath's global FTZ).

#include <algorithm>
#include <cmath>

#include "simd/kernels.hpp"

#if defined(VIRA_SIMD_HAVE_AVX2)

namespace vira::simd::fastmath {

void eigen_mid_sym3_batch(const double* a00, const double* a11, const double* a22,
                          const double* a01, const double* a02, const double* a12, int n,
                          double* out) {
  constexpr double kPi = 3.14159265358979323846;
  for (int l = 0; l < n; ++l) {
    const double off = a01[l] * a01[l] + a02[l] * a02[l] + a12[l] * a12[l];
    const double q = (a00[l] + a11[l] + a22[l]) / 3.0;
    const double b00 = a00[l] - q;
    const double b11 = a11[l] - q;
    const double b22 = a22[l] - q;
    const double p2 = b00 * b00 + b11 * b11 + b22 * b22 + 2.0 * off;
    const double p = std::sqrt(p2 / 6.0);
    // p == 0 means A = q·I (all eigenvalues q). The tiny floor keeps the
    // division finite; b·inv_p is then 0/tiny = 0, half_det = 0, and the
    // trig path lands on q exactly — no branch needed.
    const double inv_p = 1.0 / std::max(p, 1e-150);
    const double c00 = b00 * inv_p;
    const double c11 = b11 * inv_p;
    const double c22 = b22 * inv_p;
    const double c01 = a01[l] * inv_p;
    const double c02 = a02[l] * inv_p;
    const double c12 = a12[l] * inv_p;
    const double half_det =
        0.5 * (c00 * (c11 * c22 - c12 * c12) - c01 * (c01 * c22 - c12 * c02) +
               c02 * (c01 * c12 - c11 * c02));
    const double r = std::clamp(half_det, -1.0, 1.0);
    const double phi = std::acos(r) / 3.0;
    const double e2 = q + 2.0 * p * std::cos(phi);
    const double e0 = q + 2.0 * p * std::cos(phi + 2.0 * kPi / 3.0);
    out[l] = 3.0 * q - e0 - e2;
  }
}

}  // namespace vira::simd::fastmath

#endif  // VIRA_SIMD_HAVE_AVX2
