#include "simd/kernels.hpp"

#include "simd/simd.hpp"

namespace vira::simd {

// Dispatchers route each call to the TU matching active_level(). The
// branch costs nothing relative to kernel bodies that sweep whole blocks.

std::pair<float, float> lambda2_field(const GridView& g, float* out) {
#if defined(VIRA_SIMD_HAVE_AVX2)
  if (active_level() == Level::kAvx2) {
    return avx2::lambda2_field(g, out);
  }
#endif
  return generic::lambda2_field(g, out);
}

void active_cell_mask(const float* n00, const float* n01, const float* n10, const float* n11,
                      int ncells, float iso, std::uint8_t* mask) {
#if defined(VIRA_SIMD_HAVE_AVX2)
  if (active_level() == Level::kAvx2) {
    avx2::active_cell_mask(n00, n01, n10, n11, ncells, iso, mask);
    return;
  }
#endif
  generic::active_cell_mask(n00, n01, n10, n11, ncells, iso, mask);
}

void eigen_mid_sym3_batch(const double* a00, const double* a11, const double* a22,
                          const double* a01, const double* a02, const double* a12, int n,
                          double* out) {
#if defined(VIRA_SIMD_HAVE_AVX2)
  if (active_level() == Level::kAvx2) {
    avx2::eigen_mid_sym3_batch(a00, a11, a22, a01, a02, a12, n, out);
    return;
  }
#endif
  generic::eigen_mid_sym3_batch(a00, a11, a22, a01, a02, a12, n, out);
}

void trilinear_gather(const float* values, const std::int64_t* idx, const double* w, int n,
                      double* out) {
#if defined(VIRA_SIMD_HAVE_AVX2)
  if (active_level() == Level::kAvx2) {
    avx2::trilinear_gather(values, idx, w, n, out);
    return;
  }
#endif
  generic::trilinear_gather(values, idx, w, n, out);
}

}  // namespace vira::simd
