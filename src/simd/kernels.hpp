#pragma once

/// \file kernels.hpp
/// Vectorized extraction kernels over SoA block storage (DESIGN.md §13).
///
/// The kernels see a block only through GridView — plain pointers into the
/// 64-byte-aligned, padded component arrays of grid::FieldStore — so this
/// library stays a leaf (no grid/algo dependency) and the same kernel body
/// compiles into two translation units: a portable baseline and an
/// AVX2+FMA one (kernels.inl included by kernels_generic.cpp and
/// kernels_avx2.cpp). The public functions here route to whichever TU
/// simd::active_level() selects.
///
/// Numerical contract: each kernel mirrors the scalar reference formulas
/// (same finite-difference stencils, same adjugate inverse, same analytic
/// eigen-solve), so results agree to rounding-order differences only —
/// the property tests in simd_kernel_test.cpp bound the drift.

#include <cstdint>
#include <utility>

namespace vira::simd {

/// Plain-pointer view of one structured block's SoA arrays. ni/nj/nk are
/// node counts; node (i,j,k) lives at index (k*nj + j)*ni + i.
struct GridView {
  const float* px = nullptr;
  const float* py = nullptr;
  const float* pz = nullptr;
  const float* vx = nullptr;
  const float* vy = nullptr;
  const float* vz = nullptr;
  int ni = 0;
  int nj = 0;
  int nk = 0;

  std::int64_t node_index(int i, int j, int k) const noexcept {
    return (static_cast<std::int64_t>(k) * nj + j) * ni + i;
  }
  std::int64_t node_count() const noexcept {
    return static_cast<std::int64_t>(ni) * nj * nk;
  }
};

/// λ2 vortex criterion for every node: out[node_index] = middle eigenvalue
/// of S²+Q² of the curvilinear velocity-gradient tensor. `out` must hold
/// node_count() floats. Returns the (min, max) of the written field.
std::pair<float, float> lambda2_field(const GridView& g, float* out);

/// Active-cell scan for one cell row: mask[c] = 1 iff the 8 corner values
/// of cell c straddle `iso` (any corner < iso AND any corner >= iso — the
/// exact cell_is_active predicate). n00/n01/n10/n11 point at the first
/// node of the four corner node rows (j,k), (j+1,k), (j,k+1), (j+1,k+1);
/// each must be readable for ncells+1 floats.
void active_cell_mask(const float* n00, const float* n01, const float* n10, const float* n11,
                      int ncells, float iso, std::uint8_t* mask);

/// Batch middle eigenvalue of symmetric 3×3 matrices given their six
/// unique entries per lane (analytic trig method, same as
/// math::eigenvalues_sym3).
void eigen_mid_sym3_batch(const double* a00, const double* a11, const double* a22,
                          const double* a01, const double* a02, const double* a12, int n,
                          double* out);

/// Batch 8-point weighted gather: out[l] = Σ_{c<8} values[idx[l*8+c]] *
/// w[l*8+c] — the trilinear reconstruction primitive the batched pathline
/// integrator uses per velocity component.
void trilinear_gather(const float* values, const std::int64_t* idx, const double* w, int n,
                      double* out);

/// --- per-instruction-set implementations (dispatch targets) -------------
namespace generic {
std::pair<float, float> lambda2_field(const GridView& g, float* out);
void active_cell_mask(const float* n00, const float* n01, const float* n10, const float* n11,
                      int ncells, float iso, std::uint8_t* mask);
void eigen_mid_sym3_batch(const double* a00, const double* a11, const double* a22,
                          const double* a01, const double* a02, const double* a12, int n,
                          double* out);
void trilinear_gather(const float* values, const std::int64_t* idx, const double* w, int n,
                      double* out);
}  // namespace generic

#if defined(VIRA_SIMD_HAVE_AVX2)
namespace avx2 {
std::pair<float, float> lambda2_field(const GridView& g, float* out);
void active_cell_mask(const float* n00, const float* n01, const float* n10, const float* n11,
                      int ncells, float iso, std::uint8_t* mask);
void eigen_mid_sym3_batch(const double* a00, const double* a11, const double* a22,
                          const double* a01, const double* a02, const double* a12, int n,
                          double* out);
void trilinear_gather(const float* values, const std::int64_t* idx, const double* w, int n,
                      double* out);
}  // namespace avx2

/// Branch-free eigen-solve from the -ffast-math TU (kernels_eigen_fast.cpp)
/// whose acos/cos lower onto libmvec vector calls; backs the avx2 kernels'
/// pass B. Agrees with the strict formula to rounding error, not bit-exact.
namespace fastmath {
void eigen_mid_sym3_batch(const double* a00, const double* a11, const double* a22,
                          const double* a01, const double* a02, const double* a12, int n,
                          double* out);
}  // namespace fastmath
#endif

}  // namespace vira::simd
