#pragma once

/// \file mat3.hpp
/// 3x3 matrix; row-major. Carries exactly what the λ2 criterion and the
/// curvilinear metric terms need: products, transpose, inverse,
/// symmetric/antisymmetric split.

#include <array>
#include <cmath>

#include "math/vec3.hpp"

namespace vira::math {

struct Mat3 {
  // m[row][col]
  std::array<std::array<double, 3>, 3> m{{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}};

  constexpr Mat3() = default;

  static constexpr Mat3 identity() {
    Mat3 r;
    r.m[0][0] = r.m[1][1] = r.m[2][2] = 1.0;
    return r;
  }

  static constexpr Mat3 from_rows(const Vec3& r0, const Vec3& r1, const Vec3& r2) {
    Mat3 r;
    r.m[0] = {r0.x, r0.y, r0.z};
    r.m[1] = {r1.x, r1.y, r1.z};
    r.m[2] = {r2.x, r2.y, r2.z};
    return r;
  }

  static constexpr Mat3 from_cols(const Vec3& c0, const Vec3& c1, const Vec3& c2) {
    Mat3 r;
    r.m[0] = {c0.x, c1.x, c2.x};
    r.m[1] = {c0.y, c1.y, c2.y};
    r.m[2] = {c0.z, c1.z, c2.z};
    return r;
  }

  constexpr double operator()(int row, int col) const { return m[row][col]; }
  double& operator()(int row, int col) { return m[row][col]; }

  constexpr Mat3 operator+(const Mat3& o) const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) r.m[i][j] = m[i][j] + o.m[i][j];
    return r;
  }

  constexpr Mat3 operator-(const Mat3& o) const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) r.m[i][j] = m[i][j] - o.m[i][j];
    return r;
  }

  constexpr Mat3 operator*(double s) const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) r.m[i][j] = m[i][j] * s;
    return r;
  }

  constexpr Mat3 operator*(const Mat3& o) const {
    Mat3 r;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        double sum = 0.0;
        for (int k = 0; k < 3; ++k) sum += m[i][k] * o.m[k][j];
        r.m[i][j] = sum;
      }
    }
    return r;
  }

  constexpr Vec3 operator*(const Vec3& v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }

  constexpr Mat3 transpose() const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) r.m[i][j] = m[j][i];
    return r;
  }

  constexpr double det() const {
    return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
           m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
           m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  }

  constexpr double trace() const { return m[0][0] + m[1][1] + m[2][2]; }

  /// Inverse via adjugate. Returns identity-scaled garbage if singular;
  /// callers that may face singular Jacobians check det() first.
  constexpr Mat3 inverse() const {
    const double d = det();
    const double inv = d != 0.0 ? 1.0 / d : 0.0;
    Mat3 r;
    r.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv;
    r.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv;
    r.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv;
    r.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv;
    r.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv;
    r.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv;
    r.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv;
    r.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv;
    r.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv;
    return r;
  }

  /// Symmetric part S = (A + Aᵀ)/2  — strain-rate tensor.
  constexpr Mat3 symmetric_part() const { return (*this + transpose()) * 0.5; }

  /// Antisymmetric part Q = (A - Aᵀ)/2 — rotation-rate tensor.
  constexpr Mat3 antisymmetric_part() const { return (*this - transpose()) * 0.5; }

  double frobenius_norm() const {
    double sum = 0.0;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) sum += m[i][j] * m[i][j];
    return std::sqrt(sum);
  }
};

}  // namespace vira::math
