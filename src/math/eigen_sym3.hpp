#pragma once

/// \file eigen_sym3.hpp
/// Eigenvalues of symmetric 3x3 matrices.
///
/// The λ2 vortex criterion (Jeong & Hussain 1995, paper Sec. 6.3) needs the
/// *sorted* eigenvalues of the symmetric matrix S² + Q² at every grid node.
/// We use the analytic trigonometric method (Smith 1961): for a symmetric
/// matrix it is branch-free apart from the diagonal fast path, needs no
/// iteration, and is accurate to ~1e-12 relative for well-scaled input —
/// plenty for a boundary criterion evaluated on single-precision CFD data.

#include <array>

#include "math/mat3.hpp"

namespace vira::math {

/// Eigenvalues of a symmetric matrix, sorted ascending (λ0 ≤ λ1 ≤ λ2...).
/// NOTE the paper's "second largest eigenvalue λ2" is the *middle* value of
/// the sorted triple; helper lambda2_of() returns exactly that.
std::array<double, 3> eigenvalues_sym3(const Mat3& a);

/// The λ2 value (middle eigenvalue) of a symmetric matrix.
double middle_eigenvalue_sym3(const Mat3& a);

/// Full symmetric eigen-decomposition: eigenvalues ascending plus
/// orthonormal eigenvectors (columns of the returned matrix match the
/// eigenvalue order). Jacobi rotations; used only by tests and the
/// cut-plane/diagnostic paths, not the λ2 hot loop.
struct EigenSym3 {
  std::array<double, 3> values{};
  Mat3 vectors;  // column i is the eigenvector for values[i]
};
EigenSym3 eigen_decompose_sym3(const Mat3& a);

/// λ2 criterion: middle eigenvalue of S² + Q² where S/Q are the
/// symmetric/antisymmetric parts of the velocity gradient tensor.
double lambda2_of(const Mat3& velocity_gradient);

}  // namespace vira::math
