#pragma once

/// \file vec3.hpp
/// 3-component vector used throughout grids, geometry and integration.
/// double precision; field storage in StructuredBlock is float and converts
/// on access (the original system stored single-precision CFD data too).

#include <cmath>
#include <cstddef>

namespace vira::math {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }
  double& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const { return x == o.x && y == o.y && z == o.z; }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }

  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

/// Component-wise min/max, for bounding boxes.
inline Vec3 min(const Vec3& a, const Vec3& b) {
  return {std::fmin(a.x, b.x), std::fmin(a.y, b.y), std::fmin(a.z, b.z)};
}
inline Vec3 max(const Vec3& a, const Vec3& b) {
  return {std::fmax(a.x, b.x), std::fmax(a.y, b.y), std::fmax(a.z, b.z)};
}

/// Linear interpolation a + t (b - a).
constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) { return a + (b - a) * t; }

}  // namespace vira::math
