#pragma once

/// \file aabb.hpp
/// Axis-aligned bounding boxes (block extents, BSP leaves, locator bins).

#include <limits>

#include "math/vec3.hpp"

namespace vira::math {

struct Aabb {
  Vec3 lo{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec3 hi{-std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  constexpr Aabb() = default;
  constexpr Aabb(const Vec3& lo_, const Vec3& hi_) : lo(lo_), hi(hi_) {}

  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }

  void expand(const Vec3& p) {
    lo = min(lo, p);
    hi = max(hi, p);
  }

  void expand(const Aabb& other) {
    lo = min(lo, other.lo);
    hi = max(hi, other.hi);
  }

  bool contains(const Vec3& p, double eps = 0.0) const {
    return p.x >= lo.x - eps && p.x <= hi.x + eps && p.y >= lo.y - eps && p.y <= hi.y + eps &&
           p.z >= lo.z - eps && p.z <= hi.z + eps;
  }

  bool overlaps(const Aabb& other) const {
    return lo.x <= other.hi.x && hi.x >= other.lo.x && lo.y <= other.hi.y && hi.y >= other.lo.y &&
           lo.z <= other.hi.z && hi.z >= other.lo.z;
  }

  Vec3 center() const { return (lo + hi) * 0.5; }
  Vec3 extent() const { return hi - lo; }

  double diagonal() const { return valid() ? (hi - lo).norm() : 0.0; }

  /// Squared distance from a point to the box (0 if inside).
  double distance2(const Vec3& p) const {
    double d2 = 0.0;
    for (int axis = 0; axis < 3; ++axis) {
      const double v = p[axis];
      if (v < lo[axis]) {
        const double d = lo[axis] - v;
        d2 += d * d;
      } else if (v > hi[axis]) {
        const double d = v - hi[axis];
        d2 += d * d;
      }
    }
    return d2;
  }
};

}  // namespace vira::math
