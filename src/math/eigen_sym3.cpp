#include "math/eigen_sym3.hpp"

#include <algorithm>
#include <cmath>

namespace vira::math {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

std::array<double, 3> eigenvalues_sym3(const Mat3& a) {
  const double a00 = a(0, 0);
  const double a11 = a(1, 1);
  const double a22 = a(2, 2);
  const double a01 = a(0, 1);
  const double a02 = a(0, 2);
  const double a12 = a(1, 2);

  const double off = a01 * a01 + a02 * a02 + a12 * a12;
  if (off == 0.0) {
    // Already diagonal.
    std::array<double, 3> v{a00, a11, a22};
    std::sort(v.begin(), v.end());
    return v;
  }

  const double q = (a00 + a11 + a22) / 3.0;
  const double b00 = a00 - q;
  const double b11 = a11 - q;
  const double b22 = a22 - q;
  const double p2 = b00 * b00 + b11 * b11 + b22 * b22 + 2.0 * off;
  const double p = std::sqrt(p2 / 6.0);

  // det(B) / 2 with B = (A - qI) / p
  const double inv_p = 1.0 / p;
  const double c00 = b00 * inv_p;
  const double c11 = b11 * inv_p;
  const double c22 = b22 * inv_p;
  const double c01 = a01 * inv_p;
  const double c02 = a02 * inv_p;
  const double c12 = a12 * inv_p;
  const double half_det = 0.5 * (c00 * (c11 * c22 - c12 * c12) - c01 * (c01 * c22 - c12 * c02) +
                                 c02 * (c01 * c12 - c11 * c02));

  const double r = std::clamp(half_det, -1.0, 1.0);
  const double phi = std::acos(r) / 3.0;

  const double e2 = q + 2.0 * p * std::cos(phi);                   // largest
  const double e0 = q + 2.0 * p * std::cos(phi + 2.0 * kPi / 3.0); // smallest
  const double e1 = 3.0 * q - e0 - e2;                             // middle (trace preserved)
  return {e0, e1, e2};
}

double middle_eigenvalue_sym3(const Mat3& a) { return eigenvalues_sym3(a)[1]; }

EigenSym3 eigen_decompose_sym3(const Mat3& a) {
  // Cyclic Jacobi; symmetric input assumed (upper triangle used).
  Mat3 d = a;
  Mat3 v = Mat3::identity();

  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        off += d(i, j) * d(i, j);
      }
    }
    if (off < 1e-30) {
      break;
    }
    for (int p = 0; p < 3; ++p) {
      for (int q = p + 1; q < 3; ++q) {
        if (std::fabs(d(p, q)) < 1e-300) {
          continue;
        }
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        Mat3 rot = Mat3::identity();
        rot(p, p) = c;
        rot(q, q) = c;
        rot(p, q) = s;
        rot(q, p) = -s;

        d = rot.transpose() * d * rot;
        v = v * rot;
      }
    }
  }

  // Sort ascending, permuting eigenvector columns alongside.
  std::array<int, 3> order{0, 1, 2};
  std::sort(order.begin(), order.end(), [&](int i, int j) { return d(i, i) < d(j, j); });

  EigenSym3 result;
  for (int k = 0; k < 3; ++k) {
    result.values[k] = d(order[k], order[k]);
    for (int row = 0; row < 3; ++row) {
      result.vectors(row, k) = v(row, order[k]);
    }
  }
  return result;
}

double lambda2_of(const Mat3& velocity_gradient) {
  const Mat3 s = velocity_gradient.symmetric_part();
  const Mat3 q = velocity_gradient.antisymmetric_part();
  return middle_eigenvalue_sym3(s * s + q * q);
}

}  // namespace vira::math
