/// \file integrator_batch.cpp
/// Lockstep batch integration across seed points (DESIGN.md §13).
///
/// Every RK4 stage is one velocity_batch call over all live lanes, so a
/// DMS-backed provider samples each decoded block once per stage instead
/// of once per particle. Per lane, the control flow mirrors the scalar
/// integrators statement-for-statement (same attempt limits, same
/// step-size arithmetic, same Vec3 expression order), which is what the
/// scalar-vs-batch property tests pin down: lane trajectories are
/// identical to their scalar counterparts, not merely close.

#include <algorithm>
#include <cmath>
#include <vector>

#include "algo/integrator.hpp"

namespace vira::algo {

namespace {

/// Lane arrays one batched RK4 evaluation round needs.
struct StageBuffers {
  std::vector<Vec3> pos;
  std::vector<double> time;
  std::vector<double> step;
  std::vector<Vec3> k1, k2, k3, k4;
  std::vector<std::uint8_t> m1, m2, m3, m4;

  explicit StageBuffers(int n)
      : pos(n), time(n), step(n), k1(n), k2(n), k3(n), k4(n), m1(n), m2(n), m3(n), m4(n) {}
};

}  // namespace

void rk4_step_batch(VelocityProvider& field, const Vec3* p, const double* t, const double* h,
                    int n, const std::uint8_t* active, Vec3* out, std::uint8_t* ok) {
  // Stage-major: evaluate k1 for every lane, then k2, ... Lanes that leave
  // the domain at a stage drop out of the later stage masks, exactly like
  // the scalar early returns.
  StageBuffers b(n);

  field.velocity_batch(p, t, n, active, b.k1.data(), b.m1.data());
  for (int l = 0; l < n; ++l) {
    if (b.m1[l]) {
      b.pos[l] = p[l] + b.k1[l] * (h[l] / 2.0);
      b.time[l] = t[l] + h[l] / 2.0;
    }
  }
  field.velocity_batch(b.pos.data(), b.time.data(), n, b.m1.data(), b.k2.data(), b.m2.data());
  for (int l = 0; l < n; ++l) {
    if (b.m2[l]) {
      b.pos[l] = p[l] + b.k2[l] * (h[l] / 2.0);
    }
  }
  field.velocity_batch(b.pos.data(), b.time.data(), n, b.m2.data(), b.k3.data(), b.m3.data());
  for (int l = 0; l < n; ++l) {
    if (b.m3[l]) {
      b.pos[l] = p[l] + b.k3[l] * h[l];
      b.time[l] = t[l] + h[l];
    }
  }
  field.velocity_batch(b.pos.data(), b.time.data(), n, b.m3.data(), b.k4.data(), b.m4.data());

  for (int l = 0; l < n; ++l) {
    ok[l] = b.m4[l];
    if (b.m4[l]) {
      out[l] = p[l] + (b.k1[l] + b.k2[l] * 2.0 + b.k3[l] * 2.0 + b.k4[l]) * (h[l] / 6.0);
    }
  }
}

std::vector<std::vector<PathPoint>> integrate_pathlines_batch(
    VelocityProvider& field, const std::vector<Vec3>& seeds, double t0, double t1,
    const IntegratorParams& params) {
  const int n = static_cast<int>(seeds.size());
  std::vector<std::vector<PathPoint>> paths(seeds.size());

  // Per-lane replica of integrate_pathline's state: (p, t, h) plus the
  // in-flight adaptive-step state (h_att, attempt index).
  std::vector<Vec3> p(seeds.begin(), seeds.end());
  std::vector<double> t(n, t0);
  std::vector<double> h(n, params.h_init);
  std::vector<double> h_att(n, 0.0);
  std::vector<int> attempt(n, 0);
  std::vector<int> step_count(n, 0);
  std::vector<std::uint8_t> running(n, 1);

  for (int l = 0; l < n; ++l) {
    paths[l].push_back({p[l], t[l]});
    if (t[l] >= t1 - 1e-15 || params.max_steps <= 0) {
      running[l] = 0;
    }
  }

  std::vector<Vec3> full(n), half(n), two_halves(n);
  std::vector<std::uint8_t> full_ok(n), half_ok(n), two_ok(n);
  std::vector<double> h_half(n);

  while (true) {
    bool any = false;
    for (int l = 0; l < n; ++l) {
      if (!running[l]) {
        continue;
      }
      any = true;
      if (attempt[l] == 0) {
        // New outer step: cap by remaining interval, then clamp like
        // rk4_adaptive_step's entry.
        h_att[l] = std::clamp(std::min(h[l], t1 - t[l]), params.h_min, params.h_max);
      }
    }
    if (!any) {
      break;
    }

    for (int l = 0; l < n; ++l) {
      h_half[l] = h_att[l] / 2.0;
    }
    rk4_step_batch(field, p.data(), t.data(), h_att.data(), n, running.data(), full.data(),
                   full_ok.data());
    rk4_step_batch(field, p.data(), t.data(), h_half.data(), n, full_ok.data(), half.data(),
                   half_ok.data());
    std::vector<double> t_mid(n);
    for (int l = 0; l < n; ++l) {
      t_mid[l] = t[l] + h_half[l];
    }
    rk4_step_batch(field, half.data(), t_mid.data(), h_half.data(), n, half_ok.data(),
                   two_halves.data(), two_ok.data());

    for (int l = 0; l < n; ++l) {
      if (!running[l]) {
        continue;
      }
      auto accept = [&](const Vec3& position, double h_next) {
        p[l] = position;
        t[l] += h_att[l];
        h[l] = h_next;
        paths[l].push_back({p[l], t[l]});
        attempt[l] = 0;
        ++step_count[l];
        if (t[l] >= t1 - 1e-15 || step_count[l] >= params.max_steps) {
          running[l] = 0;
        }
      };
      auto fail_attempt = [&] {
        ++attempt[l];
        if (attempt[l] >= 32) {
          running[l] = 0;  // rk4_adaptive_step gives up -> pathline ends
        }
      };

      if (!full_ok[l]) {
        // Creep toward the boundary with a halved step before giving up.
        if (h_att[l] > params.h_min) {
          h_att[l] = std::max(params.h_min, h_att[l] / 2.0);
          fail_attempt();
        } else {
          running[l] = 0;
        }
        continue;
      }
      if (!two_ok[l]) {
        // Midpoint left the domain: accept the full step as final.
        accept(full[l], h_att[l]);
        continue;
      }
      const double error = (two_halves[l] - full[l]).norm() / 15.0;
      if (error <= params.tolerance || h_att[l] <= params.h_min) {
        const double safety = 0.9;
        const double growth =
            error > 0.0 ? safety * std::pow(params.tolerance / error, 0.2) : 2.0;
        const double h_next = std::clamp(h_att[l] * std::clamp(growth, 0.2, 2.0),
                                         params.h_min, params.h_max);
        accept(two_halves[l], h_next);
        continue;
      }
      h_att[l] = std::max(params.h_min,
                          h_att[l] * std::clamp(0.9 * std::pow(params.tolerance / error, 0.25),
                                                0.1, 0.7));
      fail_attempt();
    }
  }
  return paths;
}

namespace {

/// One batched two-level blend step: RK4 on both frozen levels, then the
/// per-lane elapsed-time lerp (two_level_rk4_step's exact semantics,
/// including the one-level-survives fallbacks).
void blend_step_batch(VelocityProvider& level_a, VelocityProvider& level_b, const Vec3* p,
                      const double* t, const double* h, int n, const std::uint8_t* active,
                      double t_a, double interval, Vec3* out, std::uint8_t* ok) {
  std::vector<Vec3> pos_a(n), pos_b(n);
  std::vector<std::uint8_t> ok_a(n), ok_b(n);
  rk4_step_batch(level_a, p, t, h, n, active, pos_a.data(), ok_a.data());
  rk4_step_batch(level_b, p, t, h, n, active, pos_b.data(), ok_b.data());
  for (int l = 0; l < n; ++l) {
    if (active != nullptr && active[l] == 0) {
      ok[l] = 0;
      continue;
    }
    if (!ok_a[l] && !ok_b[l]) {
      ok[l] = 0;
      continue;
    }
    ok[l] = 1;
    if (!ok_a[l]) {
      out[l] = pos_b[l];
    } else if (!ok_b[l]) {
      out[l] = pos_a[l];
    } else {
      const double alpha = (t[l] + h[l] - t_a) / interval;
      out[l] = math::lerp(pos_a[l], pos_b[l], std::clamp(alpha, 0.0, 1.0));
    }
  }
}

}  // namespace

int integrate_interval_two_level_batch(VelocityProvider& level_a, VelocityProvider& level_b,
                                       double t_a, double t_b, int n, Vec3* p, double* h,
                                       std::uint8_t* alive, const IntegratorParams& params,
                                       std::vector<PathPoint>* outs) {
  const double interval = t_b - t_a;
  if (interval <= 0.0) {
    int count = 0;
    for (int l = 0; l < n; ++l) {
      count += alive[l] ? 1 : 0;
    }
    return count;
  }

  std::vector<double> t(n, t_a);
  std::vector<double> h_try(n, 0.0);
  std::vector<int> attempt(n, 0);
  std::vector<int> step_count(n, 0);
  // `running` = still advancing through this interval; `alive` stays 1 for
  // lanes that merely finished it.
  std::vector<std::uint8_t> running(n);
  for (int l = 0; l < n; ++l) {
    if (alive[l]) {
      h[l] = std::clamp(h[l], params.h_min, params.h_max);
    }
    running[l] = alive[l] && t_a < t_b - 1e-15 && params.max_steps > 0 ? 1 : 0;
  }

  std::vector<Vec3> full(n), half(n), two_halves(n);
  std::vector<std::uint8_t> full_ok(n), half_ok(n), two_ok(n);
  std::vector<double> h_half(n), t_mid(n);

  while (true) {
    bool any = false;
    for (int l = 0; l < n; ++l) {
      if (!running[l]) {
        continue;
      }
      any = true;
      if (attempt[l] == 0) {
        h_try[l] = std::min(h[l], t_b - t[l]);
      }
      h_half[l] = h_try[l] / 2.0;
      t_mid[l] = t[l] + h_half[l];
    }
    if (!any) {
      break;
    }

    blend_step_batch(level_a, level_b, p, t.data(), h_try.data(), n, running.data(), t_a,
                     interval, full.data(), full_ok.data());
    blend_step_batch(level_a, level_b, p, t.data(), h_half.data(), n, full_ok.data(), t_a,
                     interval, half.data(), half_ok.data());
    blend_step_batch(level_a, level_b, half.data(), t_mid.data(), h_half.data(), n,
                     half_ok.data(), t_a, interval, two_halves.data(), two_ok.data());

    for (int l = 0; l < n; ++l) {
      if (!running[l]) {
        continue;
      }
      auto accept = [&](const Vec3& position) {
        p[l] = position;
        t[l] += h_try[l];
        outs[l].push_back({p[l], t[l]});
        attempt[l] = 0;
        ++step_count[l];
        if (t[l] >= t_b - 1e-15 || step_count[l] >= params.max_steps) {
          running[l] = 0;  // interval complete (alive stays set)
        }
      };

      if (!full_ok[l]) {
        running[l] = 0;
        alive[l] = 0;  // left the domain
        continue;
      }
      if (!two_ok[l]) {
        accept(full[l]);
        continue;
      }
      const double error = (two_halves[l] - full[l]).norm() / 15.0;
      if (error <= params.tolerance || h_try[l] <= params.h_min) {
        const double growth =
            error > 0.0 ? 0.9 * std::pow(params.tolerance / error, 0.2) : 2.0;
        h[l] = std::clamp(h_try[l] * std::clamp(growth, 0.2, 2.0), params.h_min, params.h_max);
        accept(two_halves[l]);
        continue;
      }
      h_try[l] = std::max(params.h_min,
                          h_try[l] * std::clamp(0.9 * std::pow(params.tolerance / error, 0.25),
                                                0.1, 0.7));
      ++attempt[l];
      if (attempt[l] >= 24) {
        running[l] = 0;
        alive[l] = 0;  // scalar loop's !accepted -> return false
      }
    }
  }

  int count = 0;
  for (int l = 0; l < n; ++l) {
    count += alive[l] ? 1 : 0;
  }
  return count;
}

}  // namespace vira::algo
