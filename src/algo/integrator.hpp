#pragma once

/// \file integrator.hpp
/// Particle integration (paper Sec. 6.3, Gerndt et al. PDPTA'03).
///
/// "It utilizes Runge-Kutta fourth order integration with adaptive step
/// size control [...]. The succeeding particle position is computed
/// separately on adjacent time levels and finally interpolated with
/// respect to the elapsed time."
///
/// Velocity fields are abstracted as VelocityProvider so the integrator
/// runs identically over analytic fields (tests) and DMS-backed multi-block
/// data (the pathline commands). Adaptive control uses step doubling: a
/// full step is compared against two half steps; the step size shrinks or
/// grows to keep the estimated local error within tolerance.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "grid/analytic_fields.hpp"
#include "math/aabb.hpp"
#include "math/vec3.hpp"

namespace vira::algo {

using math::Vec3;

/// Frozen-time velocity lookup; nullopt once the point leaves the domain.
class VelocityProvider {
 public:
  virtual ~VelocityProvider() = default;
  virtual std::optional<Vec3> velocity(const Vec3& p, double t) = 0;

  /// Batched lookup for the lockstep integrator: for each lane l with
  /// active[l] != 0, evaluate velocity(p[l], t[l]) into out[l] and set
  /// ok[l] (1 = in domain). Inactive lanes are skipped and get ok[l] = 0.
  /// The default loops over velocity(); providers with gather-friendly
  /// storage (BlockSampler) override it with per-lane-hint batch sampling.
  virtual void velocity_batch(const Vec3* p, const double* t, int n,
                              const std::uint8_t* active, Vec3* out, std::uint8_t* ok);
};

/// Provider over an analytic flow field (never leaves the domain unless a
/// bounding box is given).
class AnalyticProvider final : public VelocityProvider {
 public:
  explicit AnalyticProvider(const grid::FlowField& field) : field_(field) {}
  AnalyticProvider(const grid::FlowField& field, const math::Aabb& domain)
      : field_(field), domain_(domain), bounded_(true) {}

  std::optional<Vec3> velocity(const Vec3& p, double t) override {
    if (bounded_ && !domain_.contains(p)) {
      return std::nullopt;
    }
    return field_.velocity(p, t);
  }

 private:
  const grid::FlowField& field_;
  math::Aabb domain_;
  bool bounded_ = false;
};

struct IntegratorParams {
  double h_init = 1e-3;
  double h_min = 1e-6;
  double h_max = 5e-2;
  double tolerance = 1e-6;  ///< local error tolerance (absolute, per step)
  int max_steps = 100000;
};

/// One classic RK4 step; nullopt if any stage left the domain.
std::optional<Vec3> rk4_step(VelocityProvider& field, const Vec3& p, double t, double h);

struct AdaptiveStep {
  Vec3 position;
  double h_used = 0.0;
  double h_next = 0.0;
  bool ok = false;  ///< false = left the domain before completing the step
};

/// One adaptive step (step doubling, Richardson error estimate).
AdaptiveStep rk4_adaptive_step(VelocityProvider& field, const Vec3& p, double t, double h,
                               const IntegratorParams& params);

/// Paper's two-level scheme: advance on two frozen adjacent time levels and
/// blend by elapsed time. `alpha` is the blend weight of `level_b` at the
/// *end* of the step.
std::optional<Vec3> two_level_rk4_step(VelocityProvider& level_a, VelocityProvider& level_b,
                                       const Vec3& p, double t, double h, double alpha);

struct PathPoint {
  Vec3 position;
  double t = 0.0;
};

/// Integrates a pathline from `seed` at `t0` until `t1`, domain exit, or
/// `params.max_steps`. The provider sees the true time-dependent field.
std::vector<PathPoint> integrate_pathline(VelocityProvider& field, const Vec3& seed, double t0,
                                          double t1, const IntegratorParams& params);

/// Streamline variant: integrates with frozen time `t_frozen` for a fixed
/// arc count (used by the cut-plane/quickstart examples).
std::vector<PathPoint> integrate_streamline(VelocityProvider& field, const Vec3& seed,
                                            double t_frozen, double duration,
                                            const IntegratorParams& params);

/// Advances a particle across one time interval [t_a, t_b] using the
/// paper's two-level scheme with step-doubling adaptivity. Appends points
/// (excluding the entry point) to `out`; updates `p` and `h`. Returns false
/// when the particle left the domain.
bool integrate_interval_two_level(VelocityProvider& level_a, VelocityProvider& level_b,
                                  double t_a, double t_b, Vec3& p, double& h,
                                  const IntegratorParams& params, std::vector<PathPoint>& out);

/// --- batched (SoA/SIMD) variants -----------------------------------------
/// The batch integrators advance many seed points in lockstep: every RK4
/// stage becomes one velocity_batch call across all live lanes, so a
/// DMS-backed provider touches each block once per stage instead of once
/// per particle. Per lane they replay the scalar control flow and formulas
/// exactly (same attempt limits, same step-size updates, same op order),
/// so each lane's trajectory is identical to its scalar counterpart —
/// batching changes memory behavior, not results.

/// One classic RK4 step per lane (per-lane step size h[l]); ok[l] = 0 if
/// any stage of that lane left the domain (inactive lanes too).
void rk4_step_batch(VelocityProvider& field, const Vec3* p, const double* t, const double* h,
                    int n, const std::uint8_t* active, Vec3* out, std::uint8_t* ok);

/// Batched integrate_pathline: all seeds advance in lockstep over the true
/// time-dependent field. Returns one path per seed (first point = seed).
std::vector<std::vector<PathPoint>> integrate_pathlines_batch(
    VelocityProvider& field, const std::vector<Vec3>& seeds, double t0, double t1,
    const IntegratorParams& params);

/// Batched integrate_interval_two_level over `n` lanes. For each lane l
/// with alive[l] != 0: advances p[l] across [t_a, t_b], updating h[l] and
/// appending points to outs[l]; clears alive[l] when the lane leaves the
/// domain. Returns the number of lanes still alive.
int integrate_interval_two_level_batch(VelocityProvider& level_a, VelocityProvider& level_b,
                                       double t_a, double t_b, int n, Vec3* p, double* h,
                                       std::uint8_t* alive, const IntegratorParams& params,
                                       std::vector<PathPoint>* outs);

}  // namespace vira::algo
