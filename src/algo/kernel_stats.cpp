#include "algo/kernel_stats.hpp"

#include "obs/metrics.hpp"

namespace vira::algo {

void publish_kernel_stats(std::int64_t cells, double seconds, simd::Kernel kernel) {
  auto& registry = obs::Registry::instance();
  const double rate = seconds > 0.0 ? static_cast<double>(cells) / seconds : 0.0;
  registry.gauge("kernel.cells_per_sec").set(static_cast<std::int64_t>(rate));
  registry.gauge("kernel.simd_active").set(kernel == simd::Kernel::kSimd ? 1 : 0);
}

}  // namespace vira::algo
