#pragma once

/// \file payloads.hpp
/// Fragment payload encoding shared by commands (producers) and the
/// visualization client (consumer). Every streamed/final payload starts
/// with a kind string so the client can assemble without knowing which
/// command produced it.

#include <cstdint>
#include <string>

#include "algo/geometry.hpp"

namespace vira::algo {

inline constexpr const char* kPayloadMesh = "mesh";
inline constexpr const char* kPayloadLines = "lines";
inline constexpr const char* kPayloadSummary = "summary";

/// Mesh fragment. `level` is the resolution level for progressive
/// computation (0 = coarsest; -1 = non-progressive).
inline util::ByteBuffer encode_mesh_fragment(const TriangleMesh& mesh, int level = -1) {
  util::ByteBuffer out;
  out.write_string(kPayloadMesh);
  out.write<std::int32_t>(level);
  mesh.serialize(out);
  return out;
}

inline util::ByteBuffer encode_lines_fragment(const PolylineSet& lines) {
  util::ByteBuffer out;
  out.write_string(kPayloadLines);
  out.write<std::int32_t>(-1);
  lines.serialize(out);
  return out;
}

/// Terse end-of-command summary from the master worker.
inline util::ByteBuffer encode_summary(std::uint64_t triangles, std::uint64_t active_cells,
                                       std::uint64_t points) {
  util::ByteBuffer out;
  out.write_string(kPayloadSummary);
  out.write<std::int32_t>(-1);
  out.write<std::uint64_t>(triangles);
  out.write<std::uint64_t>(active_cells);
  out.write<std::uint64_t>(points);
  return out;
}

struct DecodedFragment {
  std::string kind;
  int level = -1;
  TriangleMesh mesh;      ///< kPayloadMesh
  PolylineSet lines;      ///< kPayloadLines
  std::uint64_t triangles = 0;
  std::uint64_t active_cells = 0;
  std::uint64_t points = 0;
};

inline DecodedFragment decode_fragment(util::ByteBuffer& in) {
  DecodedFragment fragment;
  fragment.kind = in.read_string();
  fragment.level = in.read<std::int32_t>();
  if (fragment.kind == kPayloadMesh) {
    fragment.mesh = TriangleMesh::deserialize(in);
  } else if (fragment.kind == kPayloadLines) {
    fragment.lines = PolylineSet::deserialize(in);
  } else if (fragment.kind == kPayloadSummary) {
    fragment.triangles = in.read<std::uint64_t>();
    fragment.active_cells = in.read<std::uint64_t>();
    fragment.points = in.read<std::uint64_t>();
  }
  return fragment;
}

}  // namespace vira::algo
