#include "algo/lambda2.hpp"

#include <algorithm>
#include <limits>

#include "math/eigen_sym3.hpp"

namespace vira::algo {

double lambda2_at(const grid::StructuredBlock& block, int i, int j, int k) {
  return math::lambda2_of(block.velocity_gradient(i, j, k));
}

std::pair<float, float> compute_lambda2_field(grid::StructuredBlock& block,
                                              const std::string& out_field) {
  auto& values = block.scalar(out_field);
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (int k = 0; k < block.nk(); ++k) {
    for (int j = 0; j < block.nj(); ++j) {
      for (int i = 0; i < block.ni(); ++i) {
        const auto value = static_cast<float>(lambda2_at(block, i, j, k));
        values[block.node_index(i, j, k)] = value;
        lo = std::min(lo, value);
        hi = std::max(hi, value);
      }
    }
  }
  return {lo, hi};
}

}  // namespace vira::algo
