#include "algo/lambda2.hpp"

#include <algorithm>
#include <limits>

#include "math/eigen_sym3.hpp"
#include "simd/kernels.hpp"

namespace vira::algo {

double lambda2_at(const grid::StructuredBlock& block, int i, int j, int k) {
  return math::lambda2_of(block.velocity_gradient(i, j, k));
}

std::pair<float, float> compute_lambda2_field(grid::StructuredBlock& block,
                                              const std::string& out_field,
                                              simd::Kernel kernel) {
  const auto values = block.scalar(out_field);
  if (kernel == simd::Kernel::kSimd) {
    const simd::GridView view{block.points_x().data(),  block.points_y().data(),
                              block.points_z().data(),  block.velocity_x().data(),
                              block.velocity_y().data(), block.velocity_z().data(),
                              block.ni(),               block.nj(),
                              block.nk()};
    return simd::lambda2_field(view, values.data());
  }
  // Scalar reference path: per-node Mat3 pipeline, kept as ground truth.
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (int k = 0; k < block.nk(); ++k) {
    for (int j = 0; j < block.nj(); ++j) {
      for (int i = 0; i < block.ni(); ++i) {
        const auto value = static_cast<float>(lambda2_at(block, i, j, k));
        values[block.node_index(i, j, k)] = value;
        lo = std::min(lo, value);
        hi = std::max(hi, value);
      }
    }
  }
  return {lo, hi};
}

}  // namespace vira::algo
