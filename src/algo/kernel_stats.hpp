#pragma once

/// \file kernel_stats.hpp
/// Per-command extraction-kernel gauges (DESIGN.md §13).
///
/// Every extraction command publishes its kernel throughput so operators
/// can see which code path ran and how fast:
///   kernel.cells_per_sec  — cells (λ2: nodes) processed per second
///   kernel.simd_active    — 1 when the SIMD kernel path was selected
/// The Fig. 15 timeline breakdown surfaces both next to the phase shares.

#include <cstdint>

#include "simd/simd.hpp"

namespace vira::algo {

/// Publishes the two kernel gauges for the command that just ran.
/// `seconds <= 0` publishes a zero rate (keeps the gauge registered).
void publish_kernel_stats(std::int64_t cells, double seconds, simd::Kernel kernel);

}  // namespace vira::algo
