#pragma once

/// \file geometry.hpp
/// Geometry containers the extraction commands produce: indexed triangle
/// meshes (isosurfaces, vortex hulls) and polylines (pathlines). Both
/// serialize compactly for streaming, merge cheaply on the client (append
/// with index offset — the paper's requirement that "the final result can
/// be assembled directly from the partial data"), and export to Wavefront
/// OBJ for inspection.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "math/aabb.hpp"
#include "math/vec3.hpp"
#include "util/byte_buffer.hpp"

namespace vira::algo {

using math::Aabb;
using math::Vec3;

class TriangleMesh {
 public:
  /// Appends a vertex, returns its index.
  std::uint32_t add_vertex(const Vec3& p);
  /// Appends a vertex with a shading normal. Meshes either carry normals
  /// for every vertex or for none; mixing is rejected by merge().
  std::uint32_t add_vertex(const Vec3& p, const Vec3& normal);
  void add_triangle(std::uint32_t a, std::uint32_t b, std::uint32_t c);
  /// Appends a whole triangle as three new vertices (soup style).
  void add_triangle(const Vec3& a, const Vec3& b, const Vec3& c);

  std::size_t vertex_count() const { return vertices_.size() / 3; }
  std::size_t triangle_count() const { return indices_.size() / 3; }
  bool empty() const { return indices_.empty(); }

  Vec3 vertex(std::size_t i) const {
    return {vertices_[3 * i], vertices_[3 * i + 1], vertices_[3 * i + 2]};
  }
  bool has_normals() const { return !normals_.empty(); }
  Vec3 normal(std::size_t i) const {
    return {normals_[3 * i], normals_[3 * i + 1], normals_[3 * i + 2]};
  }
  std::array<std::uint32_t, 3> triangle(std::size_t t) const {
    return {indices_[3 * t], indices_[3 * t + 1], indices_[3 * t + 2]};
  }

  /// Appends another mesh (indices shifted).
  void merge(const TriangleMesh& other);

  /// Welds vertices closer than `epsilon` (grid hashing); shrinks the
  /// vertex array and rewrites indices. Normals of welded duplicates are
  /// averaged and renormalized. Returns removed vertex count.
  std::size_t weld(double epsilon = 1e-9);

  Aabb bounds() const;
  double surface_area() const;

  void serialize(util::ByteBuffer& out) const;
  static TriangleMesh deserialize(util::ByteBuffer& in);

  /// Writes "o <name>" + v/f records.
  void write_obj(const std::string& path, const std::string& object_name = "mesh") const;

 private:
  std::vector<float> vertices_;        // xyz triplets
  std::vector<float> normals_;         // xyz triplets (empty = no normals)
  std::vector<std::uint32_t> indices_; // triangle corner indices
};

class PolylineSet {
 public:
  /// Starts a new polyline, returns its index.
  std::size_t begin_line();
  void add_point(const Vec3& p, double time = 0.0);

  std::size_t line_count() const { return offsets_.size(); }
  std::size_t total_points() const { return points_.size() / 3; }

  /// Points of line `l` as positions.
  std::vector<Vec3> line(std::size_t l) const;
  /// Integration times of line `l` (parallel to line()).
  std::vector<double> line_times(std::size_t l) const;

  void merge(const PolylineSet& other);

  void serialize(util::ByteBuffer& out) const;
  static PolylineSet deserialize(util::ByteBuffer& in);

  /// OBJ export with "l" records.
  void write_obj(const std::string& path) const;

 private:
  std::vector<float> points_;        // xyz triplets, all lines concatenated
  std::vector<double> times_;        // one per point
  std::vector<std::uint64_t> offsets_;  // start point index of each line
};

}  // namespace vira::algo
