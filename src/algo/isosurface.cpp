#include "algo/isosurface.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "simd/kernels.hpp"

namespace vira::algo {

namespace {

using grid::FieldId;
using grid::StructuredBlock;

/// Kuhn decomposition: six tetrahedra around the 0–6 main diagonal, one per
/// monotone edge path 0→6. Every cube face is cut by the diagonal through
/// its lowest-index corner pair, and adjacent cells agree on that diagonal
/// (verified in the watertightness property test).
constexpr int kTets[6][4] = {
    {0, 1, 2, 6}, {0, 1, 5, 6}, {0, 3, 2, 6},
    {0, 3, 7, 6}, {0, 4, 5, 6}, {0, 4, 7, 6},
};

/// (di,dj,dk) of the 8 cell corners in marching-cubes order — lets the
/// triangulator address corner nodes directly instead of recovering
/// (i,j,k) from flat indices with div/mod per corner.
constexpr int kCornerOffset[8][3] = {
    {0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
    {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
};

double edge_fraction(float sa, float sb, float iso) {
  return (static_cast<double>(iso) - sa) / (static_cast<double>(sb) - sa);
}

/// Triangulates one tetrahedron. `inside` means scalar < iso. When
/// `gradients` is non-null, each emitted vertex carries the interpolated
/// field gradient as its shading normal.
std::size_t triangulate_tet(const std::array<Vec3, 8>& pos, const std::array<float, 8>& scalar,
                            float iso, const int tet[4], TriangleMesh& mesh,
                            const std::array<Vec3, 8>* gradients) {
  int inside[4];
  int outside[4];
  int n_inside = 0;
  int n_outside = 0;
  for (int v = 0; v < 4; ++v) {
    if (scalar[tet[v]] < iso) {
      inside[n_inside++] = tet[v];
    } else {
      outside[n_outside++] = tet[v];
    }
  }
  if (n_inside == 0 || n_inside == 4) {
    return 0;
  }

  auto emit_vertex = [&](int a, int b) -> std::uint32_t {
    const double t = edge_fraction(scalar[a], scalar[b], iso);
    const Vec3 p = math::lerp(pos[a], pos[b], t);
    if (gradients != nullptr) {
      const Vec3 n = math::lerp((*gradients)[a], (*gradients)[b], t).normalized();
      return mesh.add_vertex(p, n);
    }
    return mesh.add_vertex(p);
  };
  auto emit_triangle = [&](std::pair<int, int> e0, std::pair<int, int> e1,
                           std::pair<int, int> e2) {
    mesh.add_triangle(emit_vertex(e0.first, e0.second), emit_vertex(e1.first, e1.second),
                      emit_vertex(e2.first, e2.second));
  };

  if (n_inside == 1) {
    emit_triangle({inside[0], outside[0]}, {inside[0], outside[1]}, {inside[0], outside[2]});
    return 1;
  }
  if (n_inside == 3) {
    emit_triangle({outside[0], inside[0]}, {outside[0], inside[1]}, {outside[0], inside[2]});
    return 1;
  }
  // Two in, two out: quad split into two triangles.
  emit_triangle({inside[0], outside[0]}, {inside[0], outside[1]}, {inside[1], outside[1]});
  emit_triangle({inside[0], outside[0]}, {inside[1], outside[1]}, {inside[1], outside[0]});
  return 2;
}

/// FieldId-resolved triangulation core; `values` is the field's node array.
std::size_t triangulate_cell_core(const StructuredBlock& block, FieldId field,
                                  std::span<const float> values, float iso, int ci, int cj,
                                  int ck, TriangleMesh& mesh, bool with_normals) {
  const auto corners = block.cell_corners(ci, cj, ck);

  std::array<float, 8> scalar;
  bool any_below = false;
  bool any_at_or_above = false;
  for (int v = 0; v < 8; ++v) {
    scalar[v] = values[corners[v]];
    (scalar[v] < iso ? any_below : any_at_or_above) = true;
  }
  if (!any_below || !any_at_or_above) {
    return 0;
  }

  std::array<Vec3, 8> pos;
  std::array<Vec3, 8> gradients;
  for (int v = 0; v < 8; ++v) {
    const int i = ci + kCornerOffset[v][0];
    const int j = cj + kCornerOffset[v][1];
    const int k = ck + kCornerOffset[v][2];
    pos[v] = block.point(i, j, k);
    if (with_normals) {
      gradients[v] = block.scalar_gradient(field, i, j, k);
    }
  }

  std::size_t triangles = 0;
  for (const auto& tet : kTets) {
    triangles += triangulate_tet(pos, scalar, iso, tet, mesh,
                                 with_normals ? &gradients : nullptr);
  }
  return triangles;
}

}  // namespace

bool cell_is_active(const StructuredBlock& block, const std::string& field, float iso, int ci,
                    int cj, int ck) {
  const auto values = block.scalar(field);
  const auto corners = block.cell_corners(ci, cj, ck);
  bool any_below = false;
  bool any_at_or_above = false;
  for (const auto corner : corners) {
    if (values[corner] < iso) {
      any_below = true;
    } else {
      any_at_or_above = true;
    }
  }
  return any_below && any_at_or_above;
}

std::size_t triangulate_cell(const StructuredBlock& block, const std::string& field, float iso,
                             int ci, int cj, int ck, TriangleMesh& mesh, bool with_normals) {
  const auto values = block.scalar(field);  // throws for unknown fields
  return triangulate_cell_core(block, block.field_id(field), values, iso, ci, cj, ck, mesh,
                               with_normals);
}

std::size_t extract_isosurface_range(const StructuredBlock& block, const std::string& field,
                                     float iso, const grid::CellRange& range, TriangleMesh& mesh,
                                     bool with_normals, simd::Kernel kernel) {
  const auto values = block.scalar(field);  // throws for unknown fields
  const FieldId id = block.field_id(field);
  std::size_t active = 0;

  if (kernel == simd::Kernel::kSimd) {
    // Vectorized straddle scan per cell row, then triangulate only the
    // masked cells. The mask predicate equals the triangulator's own
    // activity test, so the produced mesh is identical to the scalar path.
    const int ncells = range.i1 - range.i0;
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(std::max(ncells, 0)));
    for (int ck = range.k0; ck < range.k1; ++ck) {
      for (int cj = range.j0; cj < range.j1; ++cj) {
        const float* n00 = &values[block.node_index(range.i0, cj, ck)];
        const float* n01 = &values[block.node_index(range.i0, cj + 1, ck)];
        const float* n10 = &values[block.node_index(range.i0, cj, ck + 1)];
        const float* n11 = &values[block.node_index(range.i0, cj + 1, ck + 1)];
        simd::active_cell_mask(n00, n01, n10, n11, ncells, iso, mask.data());
        for (int c = 0; c < ncells; ++c) {
          if (mask[c] &&
              triangulate_cell_core(block, id, values, iso, range.i0 + c, cj, ck, mesh,
                                    with_normals) > 0) {
            ++active;
          }
        }
      }
    }
    return active;
  }

  for (int ck = range.k0; ck < range.k1; ++ck) {
    for (int cj = range.j0; cj < range.j1; ++cj) {
      for (int ci = range.i0; ci < range.i1; ++ci) {
        if (triangulate_cell_core(block, id, values, iso, ci, cj, ck, mesh, with_normals) >
            0) {
          ++active;
        }
      }
    }
  }
  return active;
}

std::size_t extract_isosurface(const StructuredBlock& block, const std::string& field, float iso,
                               TriangleMesh& mesh, bool with_normals, simd::Kernel kernel) {
  const grid::CellRange all{0, block.cells_i(), 0, block.cells_j(), 0, block.cells_k()};
  return extract_isosurface_range(block, field, iso, all, mesh, with_normals, kernel);
}

}  // namespace vira::algo
