#include "algo/isosurface.hpp"

#include <array>

namespace vira::algo {

namespace {

using grid::StructuredBlock;

/// Kuhn decomposition: six tetrahedra around the 0–6 main diagonal, one per
/// monotone edge path 0→6. Every cube face is cut by the diagonal through
/// its lowest-index corner pair, and adjacent cells agree on that diagonal
/// (verified in the watertightness property test).
constexpr int kTets[6][4] = {
    {0, 1, 2, 6}, {0, 1, 5, 6}, {0, 3, 2, 6},
    {0, 3, 7, 6}, {0, 4, 5, 6}, {0, 4, 7, 6},
};

double edge_fraction(float sa, float sb, float iso) {
  return (static_cast<double>(iso) - sa) / (static_cast<double>(sb) - sa);
}

/// Triangulates one tetrahedron. `inside` means scalar < iso. When
/// `gradients` is non-null, each emitted vertex carries the interpolated
/// field gradient as its shading normal.
std::size_t triangulate_tet(const std::array<Vec3, 8>& pos, const std::array<float, 8>& scalar,
                            float iso, const int tet[4], TriangleMesh& mesh,
                            const std::array<Vec3, 8>* gradients) {
  int inside[4];
  int outside[4];
  int n_inside = 0;
  int n_outside = 0;
  for (int v = 0; v < 4; ++v) {
    if (scalar[tet[v]] < iso) {
      inside[n_inside++] = tet[v];
    } else {
      outside[n_outside++] = tet[v];
    }
  }
  if (n_inside == 0 || n_inside == 4) {
    return 0;
  }

  auto emit_vertex = [&](int a, int b) -> std::uint32_t {
    const double t = edge_fraction(scalar[a], scalar[b], iso);
    const Vec3 p = math::lerp(pos[a], pos[b], t);
    if (gradients != nullptr) {
      const Vec3 n = math::lerp((*gradients)[a], (*gradients)[b], t).normalized();
      return mesh.add_vertex(p, n);
    }
    return mesh.add_vertex(p);
  };
  auto emit_triangle = [&](std::pair<int, int> e0, std::pair<int, int> e1,
                           std::pair<int, int> e2) {
    mesh.add_triangle(emit_vertex(e0.first, e0.second), emit_vertex(e1.first, e1.second),
                      emit_vertex(e2.first, e2.second));
  };

  if (n_inside == 1) {
    emit_triangle({inside[0], outside[0]}, {inside[0], outside[1]}, {inside[0], outside[2]});
    return 1;
  }
  if (n_inside == 3) {
    emit_triangle({outside[0], inside[0]}, {outside[0], inside[1]}, {outside[0], inside[2]});
    return 1;
  }
  // Two in, two out: quad split into two triangles.
  emit_triangle({inside[0], outside[0]}, {inside[0], outside[1]}, {inside[1], outside[1]});
  emit_triangle({inside[0], outside[0]}, {inside[1], outside[1]}, {inside[1], outside[0]});
  return 2;
}

}  // namespace

bool cell_is_active(const StructuredBlock& block, const std::string& field, float iso, int ci,
                    int cj, int ck) {
  const auto& values = block.scalar(field);
  const auto corners = block.cell_corners(ci, cj, ck);
  bool any_below = false;
  bool any_at_or_above = false;
  for (const auto corner : corners) {
    if (values[corner] < iso) {
      any_below = true;
    } else {
      any_at_or_above = true;
    }
  }
  return any_below && any_at_or_above;
}

std::size_t triangulate_cell(const StructuredBlock& block, const std::string& field, float iso,
                             int ci, int cj, int ck, TriangleMesh& mesh, bool with_normals) {
  const auto& values = block.scalar(field);
  const auto corners = block.cell_corners(ci, cj, ck);

  std::array<float, 8> scalar;
  bool any_below = false;
  bool any_at_or_above = false;
  for (int v = 0; v < 8; ++v) {
    scalar[v] = values[corners[v]];
    (scalar[v] < iso ? any_below : any_at_or_above) = true;
  }
  if (!any_below || !any_at_or_above) {
    return 0;
  }

  std::array<Vec3, 8> pos;
  std::array<Vec3, 8> gradients;
  for (int v = 0; v < 8; ++v) {
    const auto idx = corners[v];
    const int ni = static_cast<int>(idx % block.ni());
    const int nj = static_cast<int>((idx / block.ni()) % block.nj());
    const int nk =
        static_cast<int>(idx / (static_cast<std::int64_t>(block.ni()) * block.nj()));
    pos[v] = block.point(ni, nj, nk);
    if (with_normals) {
      gradients[v] = block.scalar_gradient(field, ni, nj, nk);
    }
  }

  std::size_t triangles = 0;
  for (const auto& tet : kTets) {
    triangles += triangulate_tet(pos, scalar, iso, tet, mesh,
                                 with_normals ? &gradients : nullptr);
  }
  return triangles;
}

std::size_t extract_isosurface_range(const StructuredBlock& block, const std::string& field,
                                     float iso, const grid::CellRange& range, TriangleMesh& mesh,
                                     bool with_normals) {
  std::size_t active = 0;
  for (int ck = range.k0; ck < range.k1; ++ck) {
    for (int cj = range.j0; cj < range.j1; ++cj) {
      for (int ci = range.i0; ci < range.i1; ++ci) {
        if (triangulate_cell(block, field, iso, ci, cj, ck, mesh, with_normals) > 0) {
          ++active;
        }
      }
    }
  }
  return active;
}

std::size_t extract_isosurface(const StructuredBlock& block, const std::string& field, float iso,
                               TriangleMesh& mesh, bool with_normals) {
  const grid::CellRange all{0, block.cells_i(), 0, block.cells_j(), 0, block.cells_k()};
  return extract_isosurface_range(block, field, iso, all, mesh, with_normals);
}

}  // namespace vira::algo
