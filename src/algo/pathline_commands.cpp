/// \file pathline_commands.cpp
/// Pathline commands (paper Sec. 6.3 / Sec. 7.3):
///
///   pathlines.simple  (SimplePathlines)  — no data management.
///   pathlines.dataman (PathlinesDataMan) — DMS-enabled; the Markov system
///                                          prefetcher learns the block
///                                          request sequence of the traces
///                                          ("naive sequential prefetchers
///                                          such as OBL fail in these
///                                          cases").
///
/// Seeds are distributed round-robin; each worker integrates its particles
/// through the time interval [step0, step1] with the two-level RK4 scheme.
/// The paper attributes the bad scalability of this command to exactly
/// this static distribution ("every pathline has different computational
/// efforts and strongly varying block requirements") — reproduced here.
///
/// Parameters: dataset, step0, step1, seeds ("x,y,z,x,y,z,..."), or
/// seed_count + seed rng; h_init/h_min/h_max/tolerance; prefetch.

#include "algo/block_sampler.hpp"
#include "algo/cfd_command.hpp"
#include "algo/kernel_stats.hpp"
#include "algo/payloads.hpp"
#include "simd/simd.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace vira::algo {

namespace {

struct PathlineParams {
  std::string dataset;
  int step0 = 0;
  int step1 = -1;  ///< -1 = last step
  std::vector<math::Vec3> seeds;
  IntegratorParams integrator;
  simd::Kernel kernel = simd::default_kernel();

  static PathlineParams from(const util::ParamList& params,
                             const grid::DatasetMeta& meta) {
    PathlineParams p;
    p.dataset = params.get_or("dataset", "");
    const auto kernel_name = params.get_or("kernel", "");
    if (!kernel_name.empty()) {
      const auto kernel = simd::parse_kernel(kernel_name);
      if (!kernel) {
        throw std::invalid_argument("pathline command: unknown kernel '" + kernel_name + "'");
      }
      p.kernel = *kernel;
    }
    p.step0 = static_cast<int>(params.get_int("step0", 0));
    p.step1 = static_cast<int>(params.get_int("step1", meta.timestep_count() - 1));
    p.integrator.h_init = params.get_double("h_init", 1e-3);
    p.integrator.h_min = params.get_double("h_min", 1e-6);
    p.integrator.h_max = params.get_double("h_max", 5e-2);
    p.integrator.tolerance = params.get_double("tolerance", 1e-5);
    p.integrator.max_steps = static_cast<int>(params.get_int("max_steps", 20000));

    const auto raw_seeds = params.get_doubles("seeds");
    for (std::size_t n = 0; n + 2 < raw_seeds.size(); n += 3) {
      p.seeds.push_back({raw_seeds[n], raw_seeds[n + 1], raw_seeds[n + 2]});
    }
    if (p.seeds.empty()) {
      // Generate seeds inside the dataset bounds.
      const auto count = params.get_int("seed_count", 16);
      util::Rng rng(static_cast<std::uint64_t>(params.get_int("seed_rng", 7)));
      const auto bounds = meta.bounds();
      for (std::int64_t n = 0; n < count; ++n) {
        p.seeds.push_back({rng.uniform(bounds.lo.x, bounds.hi.x),
                           rng.uniform(bounds.lo.y, bounds.hi.y),
                           rng.uniform(bounds.lo.z, bounds.hi.z)});
      }
    }
    return p;
  }
};

void run_pathlines(core::CommandContext& context, bool use_dms) {
  const std::string dataset = context.params().get_or("dataset", "");
  if (dataset.empty()) {
    throw std::invalid_argument("pathline command: 'dataset' parameter required");
  }
  BlockAccess access(context, dataset, use_dms);
  if (use_dms) {
    // Markov by default: time-dependent tracing produces non-uniform block
    // sequences that only the learned successor graph predicts.
    access.configure_prefetcher(context.params().get_or("prefetch", "markov"),
                                /*wrap_steps=*/true);
  }
  const auto& meta = access.meta();
  const auto p = PathlineParams::from(context.params(), meta);
  const int last_step = p.step1 < 0 ? meta.timestep_count() - 1 : p.step1;

  std::vector<std::size_t> owned;
  for (std::size_t s = 0; s < p.seeds.size(); ++s) {
    if (owns_position(s, context.group_rank(), context.group_size())) {
      owned.push_back(s);
    }
  }

  PolylineSet mine;
  std::int64_t kernel_points = 0;
  util::WallTimer kernel_timer;
  context.phases().enter(core::kPhaseCompute);

  if (p.kernel == simd::Kernel::kSimd && !owned.empty()) {
    // Interval-major lockstep: all owned seeds cross [step, step+1]
    // together through one shared sampler pair, so each block is decoded
    // and located once per interval instead of once per seed. Per-lane
    // sampler hints keep each trajectory bit-identical to the seed-major
    // scalar path below.
    const int lanes = static_cast<int>(owned.size());
    std::vector<math::Vec3> position(static_cast<std::size_t>(lanes));
    std::vector<double> h(static_cast<std::size_t>(lanes), p.integrator.h_init);
    std::vector<std::uint8_t> alive(static_cast<std::size_t>(lanes), 1);
    std::vector<std::vector<PathPoint>> paths(static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
      position[static_cast<std::size_t>(l)] = p.seeds[owned[static_cast<std::size_t>(l)]];
      paths[static_cast<std::size_t>(l)].push_back(
          {position[static_cast<std::size_t>(l)],
           meta.steps[static_cast<std::size_t>(p.step0)].time});
    }

    for (int step = p.step0; step < last_step; ++step) {
      const auto& info_a = meta.steps[static_cast<std::size_t>(step)];
      const auto& info_b = meta.steps[static_cast<std::size_t>(step + 1)];
      BlockSampler level_a(info_a, [&](int block) {
        return access.load(step, block);
      });
      BlockSampler level_b(info_b, [&](int block) {
        return access.load(step + 1, block);
      });
      const int still_alive = integrate_interval_two_level_batch(
          level_a, level_b, info_a.time, info_b.time, lanes, position.data(), h.data(),
          alive.data(), p.integrator, paths.data());
      context.report_progress(static_cast<double>(step - p.step0 + 1) /
                              std::max(1, last_step - p.step0));
      if (still_alive == 0) {
        break;
      }
    }

    for (const auto& path : paths) {
      mine.begin_line();
      for (const auto& point : path) {
        mine.add_point(point.position, point.t);
      }
      kernel_points += static_cast<std::int64_t>(path.size());
    }
  } else {
    for (const std::size_t s : owned) {
      math::Vec3 position = p.seeds[s];
      double h = p.integrator.h_init;
      std::vector<PathPoint> path;
      path.push_back({position, meta.steps[static_cast<std::size_t>(p.step0)].time});

      bool alive = true;
      for (int step = p.step0; step < last_step && alive; ++step) {
        const auto& info_a = meta.steps[static_cast<std::size_t>(step)];
        const auto& info_b = meta.steps[static_cast<std::size_t>(step + 1)];

        // The two adjacent time levels the paper's scheme integrates on.
        // Loads here are demand-driven (the integrator decides which block a
        // particle enters), so they stay serial; BlockAccess's decoded-block
        // cache makes revisits across seeds and the step/step+1 overlap free.
        BlockSampler level_a(info_a, [&](int block) {
          return access.load(step, block);
        });
        BlockSampler level_b(info_b, [&](int block) {
          return access.load(step + 1, block);
        });

        alive = integrate_interval_two_level(level_a, level_b, info_a.time, info_b.time,
                                             position, h, p.integrator, path);
      }

      mine.begin_line();
      for (const auto& point : path) {
        mine.add_point(point.position, point.t);
      }
      kernel_points += static_cast<std::int64_t>(path.size());
      context.report_progress(static_cast<double>(s + 1) / p.seeds.size());
    }
  }
  context.phases().stop();
  publish_kernel_stats(kernel_points, kernel_timer.seconds(), p.kernel);

  util::ByteBuffer part;
  mine.serialize(part);
  auto parts = context.gather_at_master(std::move(part));
  if (context.is_master()) {
    PolylineSet merged;
    for (auto& buffer : parts) {
      merged.merge(PolylineSet::deserialize(buffer));
    }
    context.send_final(encode_lines_fragment(merged));
  }
}

class SimplePathlinesCommand final : public core::Command {
 public:
  std::string name() const override { return "pathlines.simple"; }
  void execute(core::CommandContext& context) override {
    run_pathlines(context, /*use_dms=*/false);
  }
};

class PathlinesDataManCommand final : public core::Command {
 public:
  std::string name() const override { return "pathlines.dataman"; }
  void execute(core::CommandContext& context) override {
    run_pathlines(context, /*use_dms=*/true);
  }
};

}  // namespace

void register_pathline_commands(core::CommandRegistry& registry) {
  registry.register_command("pathlines.simple",
                            [] { return std::make_unique<SimplePathlinesCommand>(); });
  registry.register_command("pathlines.dataman",
                            [] { return std::make_unique<PathlinesDataManCommand>(); });
}

}  // namespace vira::algo
