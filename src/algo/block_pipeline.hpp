#pragma once

/// \file block_pipeline.hpp
/// The pipelined block executor (DESIGN.md "Execution engines").
///
/// Commands iterate their block schedule through a BlockPipeline instead
/// of calling BlockAccess::load() in a serial loop:
///
///   serial   : [load k][compute k][send k][load k+1][compute k+1]...
///   pipelined: [load k]..[compute k][send k][compute k+1][send k+1]...
///                 [load k+1 .. k+W on the task pool, overlapped]
///
/// next() returns decoded blocks in schedule order while loads and decodes
/// for the next W blocks run on the node's util::TaskPool. Backpressure:
/// at most `window` loads are outstanding, so the pipeline holds at most
/// W decoded blocks + W cached blobs beyond the serial path — memory stays
/// bounded and the DMS cache accounting stays honest (every load still
/// goes through DataProxy::request on the pool thread).
///
/// Phase accounting redefinition: "read" is the time next() actually
/// *stalls* waiting for a block that is not ready. Fully hidden loads
/// contribute zero read time; the serial fallback (no pool, no DMS, or
/// window <= 1) degenerates to the original load-in-read-phase behavior,
/// so Fig. 15's phases always sum to wall time either way.
///
/// Abort handling: stall waits poll CommandContext::check_abort(), and
/// destruction cancels queued loads (loads already running on the pool are
/// drained — they reference the command's BlockAccess and must not outlive
/// it).

#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "algo/cfd_command.hpp"

namespace vira::algo {

struct PipelineStats {
  std::size_t blocks = 0;        ///< blocks delivered by next()
  std::size_t stalls = 0;        ///< next() calls that had to wait
  double stall_seconds = 0.0;    ///< total time stalled on loads
};

class BlockPipeline {
 public:
  /// One schedule entry: (step, block).
  using Item = std::pair<int, int>;

  /// Reads the window from the command's "pipeline_window" parameter
  /// (default 4; 0 or 1 disables overlap).
  static int window_from(const util::ParamList& params);

  /// `window <= 1`, a non-DMS BlockAccess, or a context without a task
  /// pool all degrade to the serial path. `prefetch_ahead` additionally
  /// issues a code prefetch for entry k+1 when entry k is loaded *in
  /// serial mode* (preserves ViewerIso's historical prefetch behavior;
  /// the async path supersedes it).
  BlockPipeline(core::CommandContext& context, BlockAccess& access,
                std::vector<Item> schedule, int window, bool prefetch_ahead = false);
  ~BlockPipeline();
  BlockPipeline(const BlockPipeline&) = delete;
  BlockPipeline& operator=(const BlockPipeline&) = delete;

  std::size_t size() const { return schedule_.size(); }
  bool done() const { return consumed_ == schedule_.size(); }
  /// The schedule entry next() will deliver next.
  const Item& current() const { return schedule_[consumed_]; }
  bool pipelined() const { return async_; }

  /// Delivers the next block in schedule order. In async mode, stall time
  /// (waiting on a load that is not finished) is accounted to the read
  /// phase and pipeline.stall_ms; hidden loads cost nothing. Throws
  /// core::CommandAborted if the attempt is abandoned while waiting.
  BlockPtr next();

  const PipelineStats& stats() const { return stats_; }

 private:
  void fill();
  void drain();

  core::CommandContext& context_;
  BlockAccess& access_;
  std::vector<Item> schedule_;
  std::size_t window_;
  bool prefetch_ahead_;
  bool async_;
  std::size_t issued_ = 0;
  std::size_t consumed_ = 0;
  std::deque<util::Future<BlockPtr>> inflight_;
  PipelineStats stats_;
};

}  // namespace vira::algo
