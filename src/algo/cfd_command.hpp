#pragma once

/// \file cfd_command.hpp
/// Shared plumbing for the CFD post-processing commands (paper Sec. 6.3).
///
/// Every test command understands the same parameter vocabulary:
///   dataset   — dataset directory (required)
///   step      — time step index (default 0)
///   field     — node scalar to isosurface (default "density")
///   iso       — iso value / λ2 threshold
///   workers   — requested work-group size (handled by the scheduler)
///   prefetch  — "none" | "obl" | "pom" | "markov" (DMS-enabled commands)
///   stream_cells — active cells per streamed fragment (streaming commands)
///   viewpoint — "x,y,z" viewer position (ViewerIso)
///
/// BlockAccess hides the Simple-vs-DataMan difference: the Simple commands
/// read blocks straight from their files every time ("works without data
/// management"), the DataMan commands go through the node's DataProxy.
/// Phase accounting (compute/read/send) is applied here so Fig. 15's
/// breakdown is consistent across commands.

#include <memory>
#include <string>

#include "core/command.hpp"
#include "core/vmb_data_source.hpp"
#include "grid/structured_block.hpp"

namespace vira::algo {

/// Decodes a DMS blob into a block (the blob stays untouched).
grid::StructuredBlock decode_block(const dms::Blob& blob);

/// Round-robin block ownership: worker `rank` (0-based within the group)
/// owns position `i` of `order` iff i % group_size == rank.
bool owns_position(std::size_t position, int group_rank, int group_size);

/// Contiguous chunk ownership [begin, end): keeps each worker's request
/// stream in file order, which is what makes the OBL successor relation
/// (paper Sec. 4.2) predictive. The monolithic commands use this.
std::pair<int, int> chunk_range(int total, int group_rank, int group_size);

class BlockAccess {
 public:
  /// `use_dms=false` reproduces the Simple* commands: a private reader,
  /// every load hits the file system.
  BlockAccess(core::CommandContext& context, std::string dataset, bool use_dms);

  /// Loads (and decodes) one block, accounted to the read phase.
  std::shared_ptr<const grid::StructuredBlock> load(int step, int block);

  /// Issues a code prefetch for a block (DMS mode only; no-op otherwise).
  void prefetch(int step, int block);

  /// Configures the system prefetcher of this node's proxy for the dataset
  /// (DMS mode only). `wrap_steps` lets OBL cross time-step files.
  void configure_prefetcher(const std::string& kind, bool wrap_steps);

  const grid::DatasetMeta& meta() const { return meta_; }
  bool use_dms() const { return use_dms_; }

 private:
  core::CommandContext& context_;
  std::string dataset_;
  bool use_dms_;
  const grid::DatasetMeta& meta_;
  std::unique_ptr<grid::DatasetReader> direct_reader_;  ///< Simple mode only
};

/// Parses "x,y,z"; falls back to `fallback` on absence/garbage.
math::Vec3 parse_vec3(const util::ParamList& params, const std::string& key,
                      const math::Vec3& fallback);

/// Registers every built-in CFD command with the global registry.
/// Idempotent; call before constructing a Backend.
void register_builtin_commands();

}  // namespace vira::algo
