#pragma once

/// \file cfd_command.hpp
/// Shared plumbing for the CFD post-processing commands (paper Sec. 6.3).
///
/// Every test command understands the same parameter vocabulary:
///   dataset   — dataset directory (required)
///   step      — time step index (default 0)
///   field     — node scalar to isosurface (default "density")
///   iso       — iso value / λ2 threshold
///   workers   — requested work-group size (handled by the scheduler)
///   prefetch  — "none" | "obl" | "pom" | "markov" (DMS-enabled commands)
///   stream_cells — active cells per streamed fragment (streaming commands)
///   viewpoint — "x,y,z" viewer position (ViewerIso)
///
/// BlockAccess hides the Simple-vs-DataMan difference: the Simple commands
/// read blocks straight from their files every time ("works without data
/// management"), the DataMan commands go through the node's DataProxy.
/// Phase accounting (compute/read/send) is applied here so Fig. 15's
/// breakdown is consistent across commands.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/command.hpp"
#include "core/vmb_data_source.hpp"
#include "grid/structured_block.hpp"

namespace vira::algo {

/// A decoded, immutable block as the pipeline hands it to compute stages.
using BlockPtr = std::shared_ptr<const grid::StructuredBlock>;

/// Decodes a DMS blob into a block through a zero-copy read cursor — the
/// blob's bytes are never duplicated (blobs are immutable once cached).
grid::StructuredBlock decode_block(const dms::Blob& blob);

/// Round-robin block ownership: worker `rank` (0-based within the group)
/// owns position `i` of `order` iff i % group_size == rank.
bool owns_position(std::size_t position, int group_rank, int group_size);

/// Contiguous chunk ownership [begin, end): keeps each worker's request
/// stream in file order, which is what makes the OBL successor relation
/// (paper Sec. 4.2) predictive. The monolithic commands use this.
std::pair<int, int> chunk_range(int total, int group_rank, int group_size);

class BlockAccess {
 public:
  /// `use_dms=false` reproduces the Simple* commands: a private reader,
  /// every load hits the file system.
  BlockAccess(core::CommandContext& context, std::string dataset, bool use_dms);

  /// Loads (and decodes) one block, accounted to the read phase.
  BlockPtr load(int step, int block);

  /// True when loads can run on the node's task pool (DMS mode + a pool
  /// wired into the context). The pipelined executor requires this; the
  /// Simple* commands stay serial by construction.
  bool async_capable() const;

  /// Submits load+decode of one block to the node's task pool and returns
  /// immediately. The future yields the decoded block; decoding happens on
  /// the pool thread, off the command's critical path. Requires
  /// async_capable(). NOT phase-accounted — the pipeline charges only the
  /// time it actually stalls waiting on a future to the read phase.
  util::Future<BlockPtr> load_async(int step, int block);

  /// Issues a code prefetch for a block (DMS mode only; no-op otherwise).
  void prefetch(int step, int block);

  /// Configures the system prefetcher of this node's proxy for the dataset
  /// (DMS mode only). `wrap_steps` lets OBL cross time-step files.
  void configure_prefetcher(const std::string& kind, bool wrap_steps);

  const grid::DatasetMeta& meta() const { return meta_; }
  bool use_dms() const { return use_dms_; }

  /// Decoded-block cache statistics (hits across load/load_async).
  std::uint64_t decoded_hits() const;

 private:
  /// Small LRU of decoded blocks keyed by (step, block). Revisits — the
  /// pathline integrator touching the same block for many seeds, or
  /// progressive passes over one step — skip deserialization entirely.
  /// Thread-safe: pool threads populate it while the command thread reads.
  BlockPtr decoded_lookup(std::uint64_t key);
  void decoded_insert(std::uint64_t key, BlockPtr block);
  static std::uint64_t decoded_key(int step, int block) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(step)) << 32) |
           static_cast<std::uint32_t>(block);
  }
  BlockPtr load_uncached(int step, int block);

  core::CommandContext& context_;
  std::string dataset_;
  bool use_dms_;
  const grid::DatasetMeta& meta_;
  std::unique_ptr<grid::DatasetReader> direct_reader_;  ///< Simple mode only

  static constexpr std::size_t kDecodedCapacity = 8;
  mutable std::mutex decoded_mutex_;
  std::list<std::uint64_t> decoded_lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, std::pair<BlockPtr, std::list<std::uint64_t>::iterator>>
      decoded_;
  std::uint64_t decoded_hits_ = 0;
};

/// Parses "x,y,z"; falls back to `fallback` on absence/garbage.
math::Vec3 parse_vec3(const util::ParamList& params, const std::string& key,
                      const math::Vec3& fallback);

/// Registers every built-in CFD command with the global registry.
/// Idempotent; call before constructing a Backend.
void register_builtin_commands();

}  // namespace vira::algo
