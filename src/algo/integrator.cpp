#include "algo/integrator.hpp"

#include <algorithm>
#include <cmath>

namespace vira::algo {

void VelocityProvider::velocity_batch(const Vec3* p, const double* t, int n,
                                      const std::uint8_t* active, Vec3* out,
                                      std::uint8_t* ok) {
  for (int l = 0; l < n; ++l) {
    if (active != nullptr && active[l] == 0) {
      ok[l] = 0;
      continue;
    }
    const auto v = velocity(p[l], t[l]);
    ok[l] = v.has_value() ? 1 : 0;
    if (v) {
      out[l] = *v;
    }
  }
}

std::optional<Vec3> rk4_step(VelocityProvider& field, const Vec3& p, double t, double h) {
  const auto k1 = field.velocity(p, t);
  if (!k1) {
    return std::nullopt;
  }
  const auto k2 = field.velocity(p + *k1 * (h / 2.0), t + h / 2.0);
  if (!k2) {
    return std::nullopt;
  }
  const auto k3 = field.velocity(p + *k2 * (h / 2.0), t + h / 2.0);
  if (!k3) {
    return std::nullopt;
  }
  const auto k4 = field.velocity(p + *k3 * h, t + h);
  if (!k4) {
    return std::nullopt;
  }
  return p + (*k1 + *k2 * 2.0 + *k3 * 2.0 + *k4) * (h / 6.0);
}

AdaptiveStep rk4_adaptive_step(VelocityProvider& field, const Vec3& p, double t, double h,
                               const IntegratorParams& params) {
  AdaptiveStep result;
  h = std::clamp(h, params.h_min, params.h_max);

  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto full = rk4_step(field, p, t, h);
    if (!full) {
      // Try to creep up to the boundary with a minimal step before giving up.
      if (h > params.h_min) {
        h = std::max(params.h_min, h / 2.0);
        continue;
      }
      result.ok = false;
      return result;
    }
    const auto half = rk4_step(field, p, t, h / 2.0);
    const auto two_halves = half ? rk4_step(field, *half, t + h / 2.0, h / 2.0) : std::nullopt;
    if (!two_halves) {
      // The midpoint left the domain: accept the full step as final.
      result.position = *full;
      result.h_used = h;
      result.h_next = h;
      result.ok = true;
      return result;
    }

    // Richardson: RK4 local error ~ h^5; the difference of the two
    // estimates bounds it (up to the 1/15 factor).
    const double error = (*two_halves - *full).norm() / 15.0;
    if (error <= params.tolerance || h <= params.h_min) {
      // Local extrapolation: the two-half-step result is fifth-order.
      result.position = *two_halves;
      result.h_used = h;
      const double safety = 0.9;
      const double growth =
          error > 0.0 ? safety * std::pow(params.tolerance / error, 0.2) : 2.0;
      result.h_next = std::clamp(h * std::clamp(growth, 0.2, 2.0), params.h_min, params.h_max);
      result.ok = true;
      return result;
    }
    // Reject: shrink and retry (Weller-style step halving on failure).
    h = std::max(params.h_min, h * std::clamp(0.9 * std::pow(params.tolerance / error, 0.25),
                                              0.1, 0.7));
  }
  result.ok = false;
  return result;
}

std::optional<Vec3> two_level_rk4_step(VelocityProvider& level_a, VelocityProvider& level_b,
                                       const Vec3& p, double t, double h, double alpha) {
  const auto pos_a = rk4_step(level_a, p, t, h);
  const auto pos_b = rk4_step(level_b, p, t, h);
  if (!pos_a && !pos_b) {
    return std::nullopt;
  }
  if (!pos_a) {
    return pos_b;
  }
  if (!pos_b) {
    return pos_a;
  }
  return math::lerp(*pos_a, *pos_b, std::clamp(alpha, 0.0, 1.0));
}

std::vector<PathPoint> integrate_pathline(VelocityProvider& field, const Vec3& seed, double t0,
                                          double t1, const IntegratorParams& params) {
  std::vector<PathPoint> path;
  Vec3 p = seed;
  double t = t0;
  double h = params.h_init;
  path.push_back({p, t});

  for (int step = 0; step < params.max_steps && t < t1 - 1e-15; ++step) {
    const double h_capped = std::min(h, t1 - t);
    const auto advanced = rk4_adaptive_step(field, p, t, h_capped, params);
    if (!advanced.ok) {
      break;  // left the domain
    }
    p = advanced.position;
    t += advanced.h_used;
    h = advanced.h_next;
    path.push_back({p, t});
  }
  return path;
}

std::vector<PathPoint> integrate_streamline(VelocityProvider& field, const Vec3& seed,
                                            double t_frozen, double duration,
                                            const IntegratorParams& params) {
  struct Frozen final : VelocityProvider {
    VelocityProvider& inner;
    double t_frozen;
    Frozen(VelocityProvider& inner_, double t_) : inner(inner_), t_frozen(t_) {}
    std::optional<Vec3> velocity(const Vec3& p, double) override {
      return inner.velocity(p, t_frozen);
    }
  };
  Frozen frozen(field, t_frozen);
  return integrate_pathline(frozen, seed, 0.0, duration, params);
}

bool integrate_interval_two_level(VelocityProvider& level_a, VelocityProvider& level_b,
                                  double t_a, double t_b, Vec3& p, double& h,
                                  const IntegratorParams& params, std::vector<PathPoint>& out) {
  const double interval = t_b - t_a;
  if (interval <= 0.0) {
    return true;
  }
  double t = t_a;
  h = std::clamp(h, params.h_min, params.h_max);

  auto blend_step = [&](const Vec3& from, double at, double step) -> std::optional<Vec3> {
    const double alpha = (at + step - t_a) / interval;
    return two_level_rk4_step(level_a, level_b, from, at, step, alpha);
  };

  for (int step = 0; step < params.max_steps && t < t_b - 1e-15; ++step) {
    double h_try = std::min(h, t_b - t);
    bool accepted = false;
    for (int attempt = 0; attempt < 24 && !accepted; ++attempt) {
      const auto full = blend_step(p, t, h_try);
      if (!full) {
        return false;  // left the domain
      }
      const auto half = blend_step(p, t, h_try / 2.0);
      const auto two_halves = half ? blend_step(*half, t + h_try / 2.0, h_try / 2.0)
                                   : std::nullopt;
      if (!two_halves) {
        p = *full;
        t += h_try;
        out.push_back({p, t});
        accepted = true;
        break;
      }
      const double error = (*two_halves - *full).norm() / 15.0;
      if (error <= params.tolerance || h_try <= params.h_min) {
        p = *two_halves;
        t += h_try;
        out.push_back({p, t});
        const double growth =
            error > 0.0 ? 0.9 * std::pow(params.tolerance / error, 0.2) : 2.0;
        h = std::clamp(h_try * std::clamp(growth, 0.2, 2.0), params.h_min, params.h_max);
        accepted = true;
      } else {
        h_try = std::max(params.h_min,
                         h_try * std::clamp(0.9 * std::pow(params.tolerance / error, 0.25),
                                            0.1, 0.7));
      }
    }
    if (!accepted) {
      return false;
    }
  }
  return true;
}

}  // namespace vira::algo
