/// \file iso_commands.cpp
/// The three isosurface test commands of paper Sec. 6.3 / Sec. 7.1:
///
///   iso.simple   (SimpleIso)  — no data management; every block load hits
///                               the file system.
///   iso.dataman  (IsoDataMan) — DMS-enabled with OBL system prefetch;
///                               non-streamed: partial meshes are gathered
///                               at the master worker and sent as one
///                               package.
///   iso.viewer   (ViewerIso)  — DMS-enabled *streaming* version: blocks
///                               sorted front-to-back w.r.t. the viewpoint,
///                               per-block BSP trees traversed in view
///                               order, fragments shipped every
///                               `stream_cells` active cells.

#include <algorithm>
#include <numeric>

#include "algo/block_pipeline.hpp"
#include "algo/cfd_command.hpp"
#include "algo/isosurface.hpp"
#include "algo/kernel_stats.hpp"
#include "algo/payloads.hpp"
#include "grid/bsp_tree.hpp"
#include "util/timer.hpp"

namespace vira::algo {

namespace {

struct IsoParams {
  std::string dataset;
  int step = 0;
  std::string field = "density";
  float iso = 0.0f;
  int stream_cells = 256;
  bool normals = false;  ///< per-vertex shading normals (field gradient)
  simd::Kernel kernel = simd::default_kernel();

  static IsoParams from(const util::ParamList& params) {
    IsoParams p;
    p.dataset = params.get_or("dataset", "");
    if (p.dataset.empty()) {
      throw std::invalid_argument("iso command: 'dataset' parameter required");
    }
    p.step = static_cast<int>(params.get_int("step", 0));
    p.field = params.get_or("field", "density");
    p.iso = static_cast<float>(params.get_double("iso", 0.0));
    p.stream_cells = static_cast<int>(params.get_int("stream_cells", 256));
    p.normals = params.get_bool("normals", false);
    const auto kernel_name = params.get_or("kernel", "");
    if (!kernel_name.empty()) {
      const auto kernel = simd::parse_kernel(kernel_name);
      if (!kernel) {
        throw std::invalid_argument("iso command: unknown kernel '" + kernel_name + "'");
      }
      p.kernel = *kernel;
    }
    return p;
  }
};

/// Shared non-streamed flow for SimpleIso / IsoDataMan.
void run_monolithic_iso(core::CommandContext& context, bool use_dms) {
  const auto p = IsoParams::from(context.params());
  BlockAccess access(context, p.dataset, use_dms);
  if (use_dms) {
    access.configure_prefetcher(context.params().get_or("prefetch", "obl"), false);
  }

  const int blocks = access.meta().block_count();
  const auto [begin, end] = chunk_range(blocks, context.group_rank(), context.group_size());
  std::vector<BlockPipeline::Item> schedule;
  for (int b = begin; b < end; ++b) {
    schedule.emplace_back(p.step, b);
  }
  BlockPipeline pipeline(context, access, std::move(schedule),
                         BlockPipeline::window_from(context.params()));

  TriangleMesh mine;
  std::size_t active_cells = 0;
  std::int64_t kernel_cells = 0;
  util::WallTimer kernel_timer;
  kernel_timer.pause();
  context.phases().enter(core::kPhaseCompute);
  for (int b = begin; b < end; ++b) {
    const auto block = pipeline.next();
    kernel_timer.resume();
    active_cells += extract_isosurface(*block, p.field, p.iso, mine, p.normals, p.kernel);
    kernel_timer.pause();
    kernel_cells += block->cell_count();
    context.report_progress(static_cast<double>(b - begin + 1) / std::max(1, end - begin));
  }
  context.phases().stop();
  publish_kernel_stats(kernel_cells, kernel_timer.seconds(), p.kernel);

  // Gather partial meshes; master merges into one package (paper Sec. 3:
  // "one of them (the master worker) collects these partial results and
  // merges them into one single package").
  util::ByteBuffer part;
  mine.serialize(part);
  part.write<std::uint64_t>(active_cells);
  auto parts = context.gather_at_master(std::move(part));
  if (context.is_master()) {
    TriangleMesh merged;
    std::uint64_t total_active = 0;
    for (auto& buffer : parts) {
      merged.merge(TriangleMesh::deserialize(buffer));
      total_active += buffer.read<std::uint64_t>();
    }
    context.send_final(encode_mesh_fragment(merged));
  }
}

class SimpleIsoCommand final : public core::Command {
 public:
  std::string name() const override { return "iso.simple"; }
  void execute(core::CommandContext& context) override {
    run_monolithic_iso(context, /*use_dms=*/false);
  }
};

class IsoDataManCommand final : public core::Command {
 public:
  std::string name() const override { return "iso.dataman"; }
  void execute(core::CommandContext& context) override {
    run_monolithic_iso(context, /*use_dms=*/true);
  }
};

/// View-dependent streaming isosurface extraction. Computes the FULL
/// surface (unlike view-culled schemes) but delivers the parts the viewer
/// is looking at first (paper Sec. 6.3).
class ViewerIsoCommand final : public core::Command {
 public:
  std::string name() const override { return "iso.viewer"; }

  void execute(core::CommandContext& context) override {
    const auto p = IsoParams::from(context.params());
    BlockAccess access(context, p.dataset, /*use_dms=*/true);
    access.configure_prefetcher(context.params().get_or("prefetch", "obl"), false);

    const auto& meta = access.meta();
    const auto& step_info = meta.steps.at(static_cast<std::size_t>(p.step));
    const math::Vec3 viewpoint =
        parse_vec3(context.params(), "viewpoint", meta.bounds().center());

    // 1. Sort blocks front-to-back with respect to the viewer.
    std::vector<int> order(static_cast<std::size_t>(meta.block_count()));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return step_info.blocks[static_cast<std::size_t>(a)].bounds.distance2(viewpoint) <
             step_info.blocks[static_cast<std::size_t>(b)].bounds.distance2(viewpoint);
    });

    // 2. Distribute in view order; each worker walks its blocks nearest
    // first and prefetches its next block while computing.
    std::vector<int> mine;
    for (std::size_t position = 0; position < order.size(); ++position) {
      if (owns_position(position, context.group_rank(), context.group_size())) {
        mine.push_back(order[position]);
      }
    }

    // Pipeline over the view-ordered schedule; in serial mode the pipeline
    // reproduces the historical next-block code prefetch (Sec. 4.2).
    std::vector<BlockPipeline::Item> schedule;
    for (const int block_id : mine) {
      schedule.emplace_back(p.step, block_id);
    }
    BlockPipeline pipeline(context, access, std::move(schedule),
                           BlockPipeline::window_from(context.params()),
                           /*prefetch_ahead=*/true);

    context.phases().enter(core::kPhaseCompute);
    std::size_t total_active = 0;
    std::uint64_t total_triangles = 0;
    for (std::size_t n = 0; n < mine.size(); ++n) {
      const auto block = pipeline.next();

      // 3. Per-block BSP tree, traversed front-to-back, pruning branches
      // whose scalar interval misses the iso value.
      grid::BspTree tree(*block, p.field, grid::BspTree::BuildParams{64});
      TriangleMesh pending;
      std::size_t pending_cells = 0;
      tree.traverse(viewpoint, p.iso, [&](const grid::CellRange& range) {
        total_active += extract_isosurface_range(*block, p.field, p.iso, range, pending,
                                                 p.normals, p.kernel);
        pending_cells += static_cast<std::size_t>(range.cell_count());
        if (pending_cells >= static_cast<std::size_t>(p.stream_cells) && !pending.empty()) {
          total_triangles += pending.triangle_count();
          context.stream_partial(encode_mesh_fragment(pending));
          context.phases().enter(core::kPhaseCompute);
          pending = TriangleMesh();
          pending_cells = 0;
        }
      });
      if (!pending.empty()) {
        total_triangles += pending.triangle_count();
        context.stream_partial(encode_mesh_fragment(pending));
        context.phases().enter(core::kPhaseCompute);
      }
      context.report_progress(static_cast<double>(n + 1) / std::max<std::size_t>(1, mine.size()));
    }
    context.phases().stop();

    util::ByteBuffer part;
    part.write<std::uint64_t>(total_triangles);
    part.write<std::uint64_t>(total_active);
    auto parts = context.gather_at_master(std::move(part));
    if (context.is_master()) {
      std::uint64_t triangles = 0;
      std::uint64_t cells = 0;
      for (auto& buffer : parts) {
        triangles += buffer.read<std::uint64_t>();
        cells += buffer.read<std::uint64_t>();
      }
      context.send_final(encode_summary(triangles, cells, 0));
    }
  }
};

}  // namespace

void register_iso_commands(core::CommandRegistry& registry) {
  registry.register_command("iso.simple", [] { return std::make_unique<SimpleIsoCommand>(); });
  registry.register_command("iso.dataman",
                            [] { return std::make_unique<IsoDataManCommand>(); });
  registry.register_command("iso.viewer", [] { return std::make_unique<ViewerIsoCommand>(); });
}

}  // namespace vira::algo
