#pragma once

/// \file block_sampler.hpp
/// Velocity sampling across the blocks of one time level.
///
/// Pathline integration queries velocity at arbitrary points; blocks are
/// fetched on demand through a BlockFetcher (a DMS proxy request in the
/// DataMan commands, a direct file read in the Simple ones) and located via
/// per-block CellLocators built lazily. The sampler keeps the last (block,
/// cell) as a hint, so the common case — the particle stays in or near its
/// cell — needs no search. The sequence of fetched blocks is exactly the
/// request stream the Markov prefetcher learns from (paper Sec. 6.3: "the
/// challenge for the DMS is to figure out a good guess for the next block
/// of a particle trace").

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "algo/integrator.hpp"
#include "grid/cell_locator.hpp"
#include "grid/dataset_io.hpp"

namespace vira::algo {

class BlockSampler final : public VelocityProvider {
 public:
  using BlockFetcher =
      std::function<std::shared_ptr<const grid::StructuredBlock>(int block_index)>;

  /// `step_info` describes the time level (block bounds drive the block
  /// search); `fetch` materializes a block.
  BlockSampler(const grid::TimestepInfo& step_info, BlockFetcher fetch);

  std::optional<Vec3> velocity(const Vec3& p, double t) override;

  /// Lockstep override: each lane keeps its *own* (block, cell) hint that
  /// evolves from that lane's query sequence only — exactly what the lane
  /// would see with a private scalar sampler — so batch trajectories are
  /// bit-identical to per-seed scalar runs. Lanes resolved to the same
  /// block are interpolated together through simd::trilinear_gather.
  void velocity_batch(const Vec3* p, const double* t, int n, const std::uint8_t* active,
                      Vec3* out, std::uint8_t* ok) override;

  /// Blocks touched so far (diagnostics / load-imbalance analysis).
  std::size_t blocks_touched() const { return loaded_.size(); }

 private:
  struct Loaded {
    std::shared_ptr<const grid::StructuredBlock> block;
    std::unique_ptr<grid::CellLocator> locator;
  };

  Loaded* ensure_loaded(int block_index);

  const grid::TimestepInfo& info_;
  BlockFetcher fetch_;
  std::map<int, Loaded> loaded_;

  int hint_block_ = -1;
  grid::CellCoord hint_cell_{};
  bool have_hint_ = false;

  struct LaneHint {
    int block = -1;
    grid::CellCoord cell{};
    bool valid = false;
  };
  std::vector<LaneHint> lane_hints_;  ///< per-lane hints for velocity_batch
};

}  // namespace vira::algo
