#include "algo/geometry.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace vira::algo {

std::uint32_t TriangleMesh::add_vertex(const Vec3& p) {
  const auto index = static_cast<std::uint32_t>(vertex_count());
  vertices_.push_back(static_cast<float>(p.x));
  vertices_.push_back(static_cast<float>(p.y));
  vertices_.push_back(static_cast<float>(p.z));
  return index;
}

std::uint32_t TriangleMesh::add_vertex(const Vec3& p, const Vec3& normal) {
  const auto index = add_vertex(p);
  normals_.push_back(static_cast<float>(normal.x));
  normals_.push_back(static_cast<float>(normal.y));
  normals_.push_back(static_cast<float>(normal.z));
  return index;
}

void TriangleMesh::add_triangle(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  indices_.push_back(a);
  indices_.push_back(b);
  indices_.push_back(c);
}

void TriangleMesh::add_triangle(const Vec3& a, const Vec3& b, const Vec3& c) {
  const auto ia = add_vertex(a);
  const auto ib = add_vertex(b);
  const auto ic = add_vertex(c);
  add_triangle(ia, ib, ic);
}

void TriangleMesh::merge(const TriangleMesh& other) {
  if (has_normals() != other.has_normals() && !empty() && !other.empty()) {
    throw std::logic_error("TriangleMesh::merge: cannot mix normal-carrying meshes with bare ones");
  }
  const auto offset = static_cast<std::uint32_t>(vertex_count());
  vertices_.insert(vertices_.end(), other.vertices_.begin(), other.vertices_.end());
  normals_.insert(normals_.end(), other.normals_.begin(), other.normals_.end());
  indices_.reserve(indices_.size() + other.indices_.size());
  for (const auto index : other.indices_) {
    indices_.push_back(index + offset);
  }
}

std::size_t TriangleMesh::weld(double epsilon) {
  if (vertices_.empty()) {
    return 0;
  }
  struct Key {
    long long x, y, z;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<long long>()(k.x * 73856093ll ^ k.y * 19349663ll ^ k.z * 83492791ll);
    }
  };
  const double inv = 1.0 / epsilon;
  const bool with_normals = has_normals();
  std::unordered_map<Key, std::uint32_t, KeyHash> seen;
  std::vector<float> new_vertices;
  std::vector<Vec3> accumulated_normals;
  std::vector<std::uint32_t> remap(vertex_count());
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    const Vec3 p = vertex(v);
    const Key key{static_cast<long long>(std::llround(p.x * inv)),
                  static_cast<long long>(std::llround(p.y * inv)),
                  static_cast<long long>(std::llround(p.z * inv))};
    auto it = seen.find(key);
    if (it == seen.end()) {
      const auto index = static_cast<std::uint32_t>(new_vertices.size() / 3);
      new_vertices.push_back(static_cast<float>(p.x));
      new_vertices.push_back(static_cast<float>(p.y));
      new_vertices.push_back(static_cast<float>(p.z));
      if (with_normals) {
        accumulated_normals.push_back(normal(v));
      }
      seen.emplace(key, index);
      remap[v] = index;
    } else {
      remap[v] = it->second;
      if (with_normals) {
        accumulated_normals[it->second] += normal(v);
      }
    }
  }
  const std::size_t removed = vertex_count() - new_vertices.size() / 3;
  vertices_ = std::move(new_vertices);
  if (with_normals) {
    normals_.clear();
    normals_.reserve(accumulated_normals.size() * 3);
    for (const auto& n : accumulated_normals) {
      const Vec3 unit = n.normalized();
      normals_.push_back(static_cast<float>(unit.x));
      normals_.push_back(static_cast<float>(unit.y));
      normals_.push_back(static_cast<float>(unit.z));
    }
  }
  for (auto& index : indices_) {
    index = remap[index];
  }
  return removed;
}

Aabb TriangleMesh::bounds() const {
  Aabb box;
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    box.expand(vertex(v));
  }
  return box;
}

double TriangleMesh::surface_area() const {
  double area = 0.0;
  for (std::size_t t = 0; t < triangle_count(); ++t) {
    const auto tri = triangle(t);
    const Vec3 a = vertex(tri[0]);
    const Vec3 b = vertex(tri[1]);
    const Vec3 c = vertex(tri[2]);
    area += 0.5 * (b - a).cross(c - a).norm();
  }
  return area;
}

void TriangleMesh::serialize(util::ByteBuffer& out) const {
  out.write_vector(vertices_);
  out.write_vector(normals_);
  out.write_vector(indices_);
}

TriangleMesh TriangleMesh::deserialize(util::ByteBuffer& in) {
  TriangleMesh mesh;
  mesh.vertices_ = in.read_vector<float>();
  mesh.normals_ = in.read_vector<float>();
  mesh.indices_ = in.read_vector<std::uint32_t>();
  if (!mesh.normals_.empty() && mesh.normals_.size() != mesh.vertices_.size()) {
    throw std::runtime_error("TriangleMesh::deserialize: normal/vertex count mismatch");
  }
  for (const auto index : mesh.indices_) {
    if (index >= mesh.vertex_count()) {
      throw std::runtime_error("TriangleMesh::deserialize: index out of range");
    }
  }
  return mesh;
}

void TriangleMesh::write_obj(const std::string& path, const std::string& object_name) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("TriangleMesh::write_obj: cannot open '" + path + "'");
  }
  out << "o " << object_name << "\n";
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    const Vec3 p = vertex(v);
    out << "v " << p.x << ' ' << p.y << ' ' << p.z << "\n";
  }
  if (has_normals()) {
    for (std::size_t v = 0; v < vertex_count(); ++v) {
      const Vec3 n = normal(v);
      out << "vn " << n.x << ' ' << n.y << ' ' << n.z << "\n";
    }
    for (std::size_t t = 0; t < triangle_count(); ++t) {
      const auto tri = triangle(t);
      out << "f " << tri[0] + 1 << "//" << tri[0] + 1 << ' ' << tri[1] + 1 << "//" << tri[1] + 1
          << ' ' << tri[2] + 1 << "//" << tri[2] + 1 << "\n";
    }
    return;
  }
  for (std::size_t t = 0; t < triangle_count(); ++t) {
    const auto tri = triangle(t);
    out << "f " << tri[0] + 1 << ' ' << tri[1] + 1 << ' ' << tri[2] + 1 << "\n";
  }
}

// ---------------------------------------------------------------------------
// PolylineSet
// ---------------------------------------------------------------------------

std::size_t PolylineSet::begin_line() {
  offsets_.push_back(total_points());
  return offsets_.size() - 1;
}

void PolylineSet::add_point(const Vec3& p, double time) {
  if (offsets_.empty()) {
    throw std::logic_error("PolylineSet::add_point before begin_line");
  }
  points_.push_back(static_cast<float>(p.x));
  points_.push_back(static_cast<float>(p.y));
  points_.push_back(static_cast<float>(p.z));
  times_.push_back(time);
}

std::vector<Vec3> PolylineSet::line(std::size_t l) const {
  const std::uint64_t start = offsets_.at(l);
  const std::uint64_t end = l + 1 < offsets_.size() ? offsets_[l + 1] : total_points();
  std::vector<Vec3> result;
  result.reserve(end - start);
  for (std::uint64_t p = start; p < end; ++p) {
    result.push_back({points_[3 * p], points_[3 * p + 1], points_[3 * p + 2]});
  }
  return result;
}

std::vector<double> PolylineSet::line_times(std::size_t l) const {
  const std::uint64_t start = offsets_.at(l);
  const std::uint64_t end = l + 1 < offsets_.size() ? offsets_[l + 1] : total_points();
  return {times_.begin() + static_cast<std::ptrdiff_t>(start),
          times_.begin() + static_cast<std::ptrdiff_t>(end)};
}

void PolylineSet::merge(const PolylineSet& other) {
  const std::uint64_t offset = total_points();
  points_.insert(points_.end(), other.points_.begin(), other.points_.end());
  times_.insert(times_.end(), other.times_.begin(), other.times_.end());
  offsets_.reserve(offsets_.size() + other.offsets_.size());
  for (const auto start : other.offsets_) {
    offsets_.push_back(start + offset);
  }
}

void PolylineSet::serialize(util::ByteBuffer& out) const {
  out.write_vector(points_);
  out.write_vector(times_);
  out.write_vector(offsets_);
}

PolylineSet PolylineSet::deserialize(util::ByteBuffer& in) {
  PolylineSet set;
  set.points_ = in.read_vector<float>();
  set.times_ = in.read_vector<double>();
  set.offsets_ = in.read_vector<std::uint64_t>();
  if (set.times_.size() * 3 != set.points_.size()) {
    throw std::runtime_error("PolylineSet::deserialize: size mismatch");
  }
  for (const auto start : set.offsets_) {
    if (start > set.total_points()) {
      throw std::runtime_error("PolylineSet::deserialize: offset out of range");
    }
  }
  return set;
}

void PolylineSet::write_obj(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("PolylineSet::write_obj: cannot open '" + path + "'");
  }
  out << "o pathlines\n";
  for (std::size_t p = 0; p < total_points(); ++p) {
    out << "v " << points_[3 * p] << ' ' << points_[3 * p + 1] << ' ' << points_[3 * p + 2]
        << "\n";
  }
  for (std::size_t l = 0; l < line_count(); ++l) {
    const std::uint64_t start = offsets_[l];
    const std::uint64_t end = l + 1 < offsets_.size() ? offsets_[l + 1] : total_points();
    if (end - start < 2) {
      continue;
    }
    out << "l";
    for (std::uint64_t p = start; p < end; ++p) {
      out << ' ' << p + 1;
    }
    out << "\n";
  }
}

}  // namespace vira::algo
