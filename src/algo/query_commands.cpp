/// \file query_commands.cpp
/// Metadata/query commands the exploration front-end needs before it can
/// steer extractions "by simple parameters" (paper Fig. 1):
///
///   query.field_range — global (min, max) of a node scalar over one time
///                       step; the client uses it to place iso-value
///                       sliders. Parallel reduction: each worker scans its
///                       chunk, the master merges. Also reports the λ2
///                       range on request (field = "lambda2"), computing
///                       the criterion on the fly.
///
///   iso.timeseries    — the unsteady-exploration workhorse: extracts the
///                       same isosurface over a range of time steps and
///                       streams one complete mesh per step (fragments are
///                       level-tagged with the step index so the client
///                       can animate). This is the access pattern that
///                       makes the DMS cache "raw data frequently reused
///                       as input" pay off across commands.

#include <algorithm>

#include "algo/block_pipeline.hpp"
#include "algo/cfd_command.hpp"
#include "algo/isosurface.hpp"
#include "algo/lambda2.hpp"
#include "algo/payloads.hpp"

namespace vira::algo {

namespace {

class FieldRangeCommand final : public core::Command {
 public:
  std::string name() const override { return "query.field_range"; }

  void execute(core::CommandContext& context) override {
    const auto& params = context.params();
    const std::string dataset = params.get_or("dataset", "");
    if (dataset.empty()) {
      throw std::invalid_argument("query.field_range: 'dataset' parameter required");
    }
    const int step = static_cast<int>(params.get_int("step", 0));
    const std::string field = params.get_or("field", "density");

    BlockAccess access(context, dataset, /*use_dms=*/true);
    access.configure_prefetcher(params.get_or("prefetch", "obl"), false);
    const int blocks = access.meta().block_count();
    const auto [begin, end] = chunk_range(blocks, context.group_rank(), context.group_size());
    std::vector<BlockPipeline::Item> schedule;
    for (int b = begin; b < end; ++b) {
      schedule.emplace_back(step, b);
    }
    BlockPipeline pipeline(context, access, std::move(schedule),
                           BlockPipeline::window_from(params));

    context.phases().enter(core::kPhaseCompute);
    float lo = std::numeric_limits<float>::max();
    float hi = std::numeric_limits<float>::lowest();
    for (int b = begin; b < end; ++b) {
      const auto block_ptr = pipeline.next();
      if (field == kLambda2Field && !block_ptr->has_scalar(kLambda2Field)) {
        grid::StructuredBlock working = *block_ptr;
        const auto [blo, bhi] = compute_lambda2_field(working);
        lo = std::min(lo, blo);
        hi = std::max(hi, bhi);
      } else {
        const auto [blo, bhi] = block_ptr->scalar_range(field);
        lo = std::min(lo, blo);
        hi = std::max(hi, bhi);
      }
    }
    context.phases().stop();

    util::ByteBuffer part;
    part.write<float>(lo);
    part.write<float>(hi);
    auto parts = context.gather_at_master(std::move(part));
    if (context.is_master()) {
      float global_lo = std::numeric_limits<float>::max();
      float global_hi = std::numeric_limits<float>::lowest();
      for (auto& buffer : parts) {
        global_lo = std::min(global_lo, buffer.read<float>());
        global_hi = std::max(global_hi, buffer.read<float>());
      }
      util::ByteBuffer result;
      result.write_string("field_range");
      result.write_string(field);
      result.write<float>(global_lo);
      result.write<float>(global_hi);
      context.send_final(std::move(result));
    }
  }
};

/// Decodes the query.field_range result payload.
struct FieldRange {
  std::string field;
  float lo = 0.0f;
  float hi = 0.0f;
};

class IsoTimeseriesCommand final : public core::Command {
 public:
  std::string name() const override { return "iso.timeseries"; }

  void execute(core::CommandContext& context) override {
    const auto& params = context.params();
    const std::string dataset = params.get_or("dataset", "");
    if (dataset.empty()) {
      throw std::invalid_argument("iso.timeseries: 'dataset' parameter required");
    }
    const std::string field = params.get_or("field", "density");
    const auto iso = static_cast<float>(params.get_double("iso", 0.0));

    BlockAccess access(context, dataset, /*use_dms=*/true);
    // OBL that crosses time-step files: the animation marches through them.
    access.configure_prefetcher(params.get_or("prefetch", "obl"), /*wrap_steps=*/true);
    const auto& meta = access.meta();
    const int step0 = static_cast<int>(params.get_int("step0", 0));
    const int step1 =
        static_cast<int>(params.get_int("step1", meta.timestep_count() - 1));
    const int blocks = meta.block_count();
    const auto [begin, end] = chunk_range(blocks, context.group_rank(), context.group_size());

    // One schedule across the whole animation: the pipeline's look-ahead
    // naturally crosses step boundaries, overlapping the next step's first
    // loads with the current step's tail compute.
    std::vector<BlockPipeline::Item> schedule;
    for (int step = step0; step <= step1; ++step) {
      for (int b = begin; b < end; ++b) {
        schedule.emplace_back(step, b);
      }
    }
    BlockPipeline pipeline(context, access, std::move(schedule),
                           BlockPipeline::window_from(params));

    std::uint64_t total_triangles = 0;
    context.phases().enter(core::kPhaseCompute);
    for (int step = step0; step <= step1; ++step) {
      TriangleMesh frame;
      for (int b = begin; b < end; ++b) {
        const auto block = pipeline.next();
        extract_isosurface(*block, field, iso, frame);
      }
      total_triangles += frame.triangle_count();
      // One fragment per (worker, step); the step index rides in the level
      // field so the client can bucket frames for playback.
      context.stream_partial(encode_mesh_fragment(frame, step));
      context.report_progress(static_cast<double>(step - step0 + 1) /
                              std::max(1, step1 - step0 + 1));
    }
    context.phases().stop();

    util::ByteBuffer part;
    part.write<std::uint64_t>(total_triangles);
    auto parts = context.gather_at_master(std::move(part));
    if (context.is_master()) {
      std::uint64_t triangles = 0;
      for (auto& buffer : parts) {
        triangles += buffer.read<std::uint64_t>();
      }
      context.send_final(encode_summary(triangles, 0, 0));
    }
  }
};

}  // namespace

void register_query_commands(core::CommandRegistry& registry) {
  registry.register_command("query.field_range",
                            [] { return std::make_unique<FieldRangeCommand>(); });
  registry.register_command("iso.timeseries",
                            [] { return std::make_unique<IsoTimeseriesCommand>(); });
}

}  // namespace vira::algo
