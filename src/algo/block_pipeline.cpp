#include "algo/block_pipeline.hpp"

#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/timer.hpp"

namespace vira::algo {

namespace {

struct PipelineInstruments {
  obs::Gauge& in_flight = obs::Registry::instance().gauge("pipeline.in_flight");
  obs::Counter& stall_ms = obs::Registry::instance().counter("pipeline.stall_ms");
  obs::Counter& blocks = obs::Registry::instance().counter("pipeline.blocks");
};

PipelineInstruments& instruments() {
  static PipelineInstruments instance;
  return instance;
}

constexpr auto kStallSlice = std::chrono::milliseconds(1);

}  // namespace

int BlockPipeline::window_from(const util::ParamList& params) {
  return static_cast<int>(params.get_int("pipeline_window", 4));
}

BlockPipeline::BlockPipeline(core::CommandContext& context, BlockAccess& access,
                             std::vector<Item> schedule, int window, bool prefetch_ahead)
    : context_(context),
      access_(access),
      schedule_(std::move(schedule)),
      window_(window > 1 ? static_cast<std::size_t>(window) : 1),
      prefetch_ahead_(prefetch_ahead),
      async_(window > 1 && access.async_capable()) {
  if (async_) {
    fill();
  }
}

BlockPipeline::~BlockPipeline() { drain(); }

void BlockPipeline::fill() {
  while (issued_ < schedule_.size() && inflight_.size() < window_) {
    const auto [step, block] = schedule_[issued_];
    inflight_.push_back(access_.load_async(step, block));
    ++issued_;
    instruments().in_flight.add(1);
  }
}

BlockPtr BlockPipeline::next() {
  if (done()) {
    throw std::logic_error("BlockPipeline::next past end of schedule");
  }
  if (!async_) {
    // Serial fallback — identical to the historical load loop, including
    // the optional look-ahead code prefetch (ViewerIso).
    const auto [step, block] = schedule_[consumed_];
    if (prefetch_ahead_ && consumed_ + 1 < schedule_.size()) {
      const auto [next_step, next_block] = schedule_[consumed_ + 1];
      access_.prefetch(next_step, next_block);
    }
    ++consumed_;
    ++stats_.blocks;
    instruments().blocks.add(1);
    return access_.load(step, block);
  }

  context_.check_abort();
  // Stall on the front future while it still sits in inflight_: if
  // check_abort() throws mid-stall, drain() (run by the destructor during
  // unwind) still owns the future and waits for the pool task to settle
  // before this command's BlockAccess/CommandContext go away. Popping first
  // would leak a live task referencing freed command state.
  if (!inflight_.front().ready()) {
    // Stall: the only stretch the pipelined path charges to "read". The
    // ScopedPhase also mirrors a read span into the trace via the worker's
    // phase listener, so stalls are visible per-stage in the timeline.
    util::ScopedPhase phase(context_.phases(), core::kPhaseRead);
    util::WallTimer stall;
    while (!inflight_.front().wait_for(kStallSlice)) {
      context_.check_abort();
    }
    const double seconds = stall.seconds();
    ++stats_.stalls;
    stats_.stall_seconds += seconds;
    instruments().stall_ms.add(static_cast<std::uint64_t>(seconds * 1e3));
  }

  auto future = std::move(inflight_.front());
  inflight_.pop_front();
  instruments().in_flight.add(-1);

  BlockPtr block = future.get();
  ++consumed_;
  ++stats_.blocks;
  instruments().blocks.add(1);
  fill();
  return block;
}

void BlockPipeline::drain() {
  // Queued loads are cancelled outright; loads already running on the pool
  // reference this command's BlockAccess, so wait for them to settle
  // before the command's stack frame goes away.
  for (auto& future : inflight_) {
    if (future.cancel()) {
      instruments().in_flight.add(-1);
      continue;
    }
    while (!future.wait_for(kStallSlice)) {
    }
    instruments().in_flight.add(-1);
  }
  inflight_.clear();
}

}  // namespace vira::algo
