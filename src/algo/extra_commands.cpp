/// \file extra_commands.cpp
/// Extension commands beyond the paper's three test commands:
///
///   cutplane.dataman (CutPlane)      — slices the grid with an arbitrary
///                                      plane, streamed block by block (the
///                                      paper lists cut planes among the
///                                      methods suited for reorganization
///                                      streaming, Sec. 5.1).
///   iso.progressive  (ProgressiveIso)— Sec. 5.3 / future work: a
///                                      multi-resolution isosurface: the
///                                      coarsest level of every block is
///                                      extracted and streamed first, then
///                                      successively finer levels replace
///                                      it (levels are tagged so the client
///                                      swaps instead of appending).

#include <cmath>

#include "algo/cfd_command.hpp"
#include "algo/isosurface.hpp"
#include "algo/payloads.hpp"

namespace vira::algo {

namespace {

/// Slices a block with plane (point p0, normal n): reuses the isosurface
/// machinery over the signed-distance node field.
class CutPlaneCommand final : public core::Command {
 public:
  std::string name() const override { return "cutplane.dataman"; }

  void execute(core::CommandContext& context) override {
    const auto& params = context.params();
    const std::string dataset = params.get_or("dataset", "");
    if (dataset.empty()) {
      throw std::invalid_argument("cutplane: 'dataset' parameter required");
    }
    const int step = static_cast<int>(params.get_int("step", 0));
    BlockAccess access(context, dataset, /*use_dms=*/true);
    access.configure_prefetcher(params.get_or("prefetch", "obl"), false);

    const auto& meta = access.meta();
    const math::Vec3 origin = parse_vec3(params, "origin", meta.bounds().center());
    math::Vec3 normal = parse_vec3(params, "normal", {0, 0, 1}).normalized();
    if (normal.norm2() == 0.0) {
      normal = {0, 0, 1};
    }

    const int blocks = meta.block_count();
    std::uint64_t total_triangles = 0;
    context.phases().enter(core::kPhaseCompute);
    for (int b = 0; b < blocks; ++b) {
      if (!owns_position(static_cast<std::size_t>(b), context.group_rank(),
                         context.group_size())) {
        continue;
      }
      // Plane-box rejection straight from metadata: untouched blocks are
      // never even loaded.
      const auto& bounds = meta.steps[static_cast<std::size_t>(step)]
                               .blocks[static_cast<std::size_t>(b)]
                               .bounds;
      const math::Vec3 center = bounds.center();
      const math::Vec3 half = bounds.extent() * 0.5;
      const double distance = std::fabs((center - origin).dot(normal));
      const double reach = std::fabs(half.x * normal.x) + std::fabs(half.y * normal.y) +
                           std::fabs(half.z * normal.z);
      if (distance > reach) {
        continue;
      }

      const auto block_ptr = access.load(step, b);
      grid::StructuredBlock working = *block_ptr;
      const auto sdf = working.scalar("plane_distance");  // span into the SoA store
      for (int k = 0; k < working.nk(); ++k) {
        for (int j = 0; j < working.nj(); ++j) {
          for (int i = 0; i < working.ni(); ++i) {
            sdf[working.node_index(i, j, k)] =
                static_cast<float>((working.point(i, j, k) - origin).dot(normal));
          }
        }
      }
      TriangleMesh slice;
      extract_isosurface(working, "plane_distance", 0.0f, slice);
      total_triangles += slice.triangle_count();
      if (!slice.empty()) {
        context.stream_partial(encode_mesh_fragment(slice));
      }
      context.report_progress(static_cast<double>(b + 1) / blocks);
    }
    context.phases().stop();

    util::ByteBuffer part;
    part.write<std::uint64_t>(total_triangles);
    auto parts = context.gather_at_master(std::move(part));
    if (context.is_master()) {
      std::uint64_t triangles = 0;
      for (auto& buffer : parts) {
        triangles += buffer.read<std::uint64_t>();
      }
      context.send_final(encode_summary(triangles, 0, 0));
    }
  }
};

/// Progressive multi-resolution isosurface (paper Sec. 5.3): stride-4 base
/// data first ("a very coarse approximation of the final result"), then
/// stride 2, then the full grid. Fragments carry their level so the client
/// replaces coarse geometry as refinements arrive.
class ProgressiveIsoCommand final : public core::Command {
 public:
  std::string name() const override { return "iso.progressive"; }

  void execute(core::CommandContext& context) override {
    const auto& params = context.params();
    const std::string dataset = params.get_or("dataset", "");
    if (dataset.empty()) {
      throw std::invalid_argument("iso.progressive: 'dataset' parameter required");
    }
    const int step = static_cast<int>(params.get_int("step", 0));
    const std::string field = params.get_or("field", "density");
    const auto iso = static_cast<float>(params.get_double("iso", 0.0));

    BlockAccess access(context, dataset, /*use_dms=*/true);
    access.configure_prefetcher(params.get_or("prefetch", "obl"), false);
    const int blocks = access.meta().block_count();

    // Load this worker's blocks once; refine level by level across ALL its
    // blocks (so the whole surface sharpens uniformly, level barriers keep
    // coarse levels strictly before finer ones).
    std::vector<std::shared_ptr<const grid::StructuredBlock>> mine;
    for (int b = 0; b < blocks; ++b) {
      if (owns_position(static_cast<std::size_t>(b), context.group_rank(),
                        context.group_size())) {
        mine.push_back(access.load(step, b));
      }
    }

    const int strides[] = {4, 2, 1};
    std::uint64_t total_triangles = 0;
    context.phases().enter(core::kPhaseCompute);
    for (int level = 0; level < 3; ++level) {
      TriangleMesh level_mesh;
      for (const auto& block : mine) {
        if (strides[level] == 1) {
          extract_isosurface(*block, field, iso, level_mesh);
        } else {
          const auto coarse = block->coarsened(strides[level]);
          extract_isosurface(coarse, field, iso, level_mesh);
        }
      }
      total_triangles = level_mesh.triangle_count();
      context.stream_partial(encode_mesh_fragment(level_mesh, level));
      context.report_progress((level + 1) / 3.0);
      // Level barrier: no worker races ahead a full resolution level, so
      // the client sees monotone refinement.
      context.group_barrier();
    }
    context.phases().stop();

    util::ByteBuffer part;
    part.write<std::uint64_t>(total_triangles);
    auto parts = context.gather_at_master(std::move(part));
    if (context.is_master()) {
      std::uint64_t triangles = 0;
      for (auto& buffer : parts) {
        triangles += buffer.read<std::uint64_t>();
      }
      context.send_final(encode_summary(triangles, 0, 0));
    }
  }
};

/// System command: clears the executing worker's caches (the benches'
/// cold-start switch, reachable from a remote client).
class ClearCacheCommand final : public core::Command {
 public:
  std::string name() const override { return "sys.clear_cache"; }
  void execute(core::CommandContext& context) override {
    context.proxy().clear_cache();
    if (context.is_master()) {
      context.send_final(encode_summary(0, 0, 0));
    }
  }
};

}  // namespace

void register_extra_commands(core::CommandRegistry& registry) {
  registry.register_command("cutplane.dataman",
                            [] { return std::make_unique<CutPlaneCommand>(); });
  registry.register_command("iso.progressive",
                            [] { return std::make_unique<ProgressiveIsoCommand>(); });
  registry.register_command("sys.clear_cache",
                            [] { return std::make_unique<ClearCacheCommand>(); });
}

}  // namespace vira::algo
