#pragma once

/// \file lambda2.hpp
/// λ2 vortex-region criterion (Jeong & Hussain; paper Sec. 6.3).
///
/// "...determines the symmetric part S and anti-symmetric part Q of the
/// velocity gradient tensor at each grid location. Thereafter, it computes
/// the three eigenvalues of S² + Q², sorts them in increasing order, and
/// finally uses the second largest eigenvalue λ2 to construct the scalar
/// field for isosurface extraction. Since vortex regions are assumed where
/// two eigenvalues are negative, λ2 about zero is considered as vortex
/// boundary."
///
/// Two implementations: the per-node scalar reference (lambda2_at, the
/// original Mat3-based math) and the SoA SIMD kernel
/// (simd::lambda2_field), selected by the `kernel` argument. Both use the
/// same stencils and eigen formulas; the property tests bound their drift
/// to rounding error.

#include <string>

#include "grid/structured_block.hpp"
#include "simd/simd.hpp"

namespace vira::algo {

inline constexpr const char* kLambda2Field = "lambda2";

/// λ2 at one node (gradient from curvilinear metric terms).
double lambda2_at(const grid::StructuredBlock& block, int i, int j, int k);

/// Computes the λ2 node field for the whole block and stores it as scalar
/// `out_field`. Returns the (min, max) of the field.
std::pair<float, float> compute_lambda2_field(grid::StructuredBlock& block,
                                              const std::string& out_field = kLambda2Field,
                                              simd::Kernel kernel = simd::default_kernel());

}  // namespace vira::algo
