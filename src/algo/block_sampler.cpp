#include "algo/block_sampler.hpp"

namespace vira::algo {

BlockSampler::BlockSampler(const grid::TimestepInfo& step_info, BlockFetcher fetch)
    : info_(step_info), fetch_(std::move(fetch)) {}

BlockSampler::Loaded* BlockSampler::ensure_loaded(int block_index) {
  auto it = loaded_.find(block_index);
  if (it == loaded_.end()) {
    auto block = fetch_(block_index);
    if (!block) {
      return nullptr;
    }
    Loaded loaded;
    loaded.locator = std::make_unique<grid::CellLocator>(*block);
    loaded.block = std::move(block);
    it = loaded_.emplace(block_index, std::move(loaded)).first;
  }
  return &it->second;
}

std::optional<Vec3> BlockSampler::velocity(const Vec3& p, double) {
  // 1. Hint: same block, near the previous cell.
  if (have_hint_ && hint_block_ >= 0) {
    if (Loaded* loaded = ensure_loaded(hint_block_)) {
      if (auto coord = loaded->locator->locate(p, hint_cell_)) {
        hint_cell_ = *coord;
        return loaded->block->interpolate_velocity(*coord);
      }
    }
  }

  // 2. Candidate blocks whose bounds contain the point. Overlapping
  // multi-block decompositions can give several candidates; the first
  // actual containment wins.
  for (std::size_t b = 0; b < info_.blocks.size(); ++b) {
    if (static_cast<int>(b) == hint_block_) {
      continue;  // already tried
    }
    if (!info_.blocks[b].bounds.contains(p, 1e-9)) {
      continue;
    }
    Loaded* loaded = ensure_loaded(static_cast<int>(b));
    if (loaded == nullptr) {
      continue;
    }
    if (auto coord = loaded->locator->locate(p)) {
      hint_block_ = static_cast<int>(b);
      hint_cell_ = *coord;
      have_hint_ = true;
      return loaded->block->interpolate_velocity(*coord);
    }
  }
  have_hint_ = false;
  return std::nullopt;
}

}  // namespace vira::algo
