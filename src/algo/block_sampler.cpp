#include "algo/block_sampler.hpp"

#include <array>

#include "simd/kernels.hpp"

namespace vira::algo {

BlockSampler::BlockSampler(const grid::TimestepInfo& step_info, BlockFetcher fetch)
    : info_(step_info), fetch_(std::move(fetch)) {}

BlockSampler::Loaded* BlockSampler::ensure_loaded(int block_index) {
  auto it = loaded_.find(block_index);
  if (it == loaded_.end()) {
    auto block = fetch_(block_index);
    if (!block) {
      return nullptr;
    }
    Loaded loaded;
    loaded.locator = std::make_unique<grid::CellLocator>(*block);
    loaded.block = std::move(block);
    it = loaded_.emplace(block_index, std::move(loaded)).first;
  }
  return &it->second;
}

std::optional<Vec3> BlockSampler::velocity(const Vec3& p, double) {
  // 1. Hint: same block, near the previous cell.
  if (have_hint_ && hint_block_ >= 0) {
    if (Loaded* loaded = ensure_loaded(hint_block_)) {
      if (auto coord = loaded->locator->locate(p, hint_cell_)) {
        hint_cell_ = *coord;
        return loaded->block->interpolate_velocity(*coord);
      }
    }
  }

  // 2. Candidate blocks whose bounds contain the point. Overlapping
  // multi-block decompositions can give several candidates; the first
  // actual containment wins.
  for (std::size_t b = 0; b < info_.blocks.size(); ++b) {
    if (static_cast<int>(b) == hint_block_) {
      continue;  // already tried
    }
    if (!info_.blocks[b].bounds.contains(p, 1e-9)) {
      continue;
    }
    Loaded* loaded = ensure_loaded(static_cast<int>(b));
    if (loaded == nullptr) {
      continue;
    }
    if (auto coord = loaded->locator->locate(p)) {
      hint_block_ = static_cast<int>(b);
      hint_cell_ = *coord;
      have_hint_ = true;
      return loaded->block->interpolate_velocity(*coord);
    }
  }
  have_hint_ = false;
  return std::nullopt;
}

void BlockSampler::velocity_batch(const Vec3* p, const double* /*t*/, int n,
                                  const std::uint8_t* active, Vec3* out, std::uint8_t* ok) {
  if (static_cast<int>(lane_hints_.size()) != n) {
    lane_hints_.assign(static_cast<std::size_t>(n), LaneHint{});
  }

  // Phase 1: locate every live lane. Same hint-then-scan logic as the
  // scalar velocity(), but against the lane's private hint.
  std::vector<const grid::StructuredBlock*> blk(static_cast<std::size_t>(n), nullptr);
  std::vector<grid::CellCoord> coord(static_cast<std::size_t>(n));
  for (int l = 0; l < n; ++l) {
    ok[l] = 0;
    if (active != nullptr && active[l] == 0) {
      continue;
    }
    LaneHint& hint = lane_hints_[static_cast<std::size_t>(l)];
    if (hint.valid && hint.block >= 0) {
      if (Loaded* loaded = ensure_loaded(hint.block)) {
        if (auto c = loaded->locator->locate(p[l], hint.cell)) {
          hint.cell = *c;
          blk[static_cast<std::size_t>(l)] = loaded->block.get();
          coord[static_cast<std::size_t>(l)] = *c;
          ok[l] = 1;
          continue;
        }
      }
    }
    for (std::size_t b = 0; b < info_.blocks.size(); ++b) {
      if (static_cast<int>(b) == hint.block) {
        continue;  // already tried
      }
      if (!info_.blocks[b].bounds.contains(p[l], 1e-9)) {
        continue;
      }
      Loaded* loaded = ensure_loaded(static_cast<int>(b));
      if (loaded == nullptr) {
        continue;
      }
      if (auto c = loaded->locator->locate(p[l])) {
        hint.block = static_cast<int>(b);
        hint.cell = *c;
        hint.valid = true;
        blk[static_cast<std::size_t>(l)] = loaded->block.get();
        coord[static_cast<std::size_t>(l)] = *c;
        ok[l] = 1;
        break;
      }
    }
    if (ok[l] == 0) {
      hint.valid = false;
    }
  }

  // Phase 2: interpolate runs of lanes that resolved to the same block in
  // one gather per velocity component. The gather's corner-sum order
  // matches interpolate_velocity exactly, so results are bit-identical.
  std::vector<std::int64_t> idx;
  std::vector<double> w;
  std::vector<double> gx, gy, gz;
  int l = 0;
  while (l < n) {
    if (!ok[l]) {
      ++l;
      continue;
    }
    const grid::StructuredBlock* block = blk[static_cast<std::size_t>(l)];
    const int begin = l;
    while (l < n && ok[l] && blk[static_cast<std::size_t>(l)] == block) {
      ++l;
    }
    const int run = l - begin;
    idx.resize(static_cast<std::size_t>(run) * 8);
    w.resize(static_cast<std::size_t>(run) * 8);
    for (int r = 0; r < run; ++r) {
      const auto& c = coord[static_cast<std::size_t>(begin + r)];
      const auto corners = block->cell_corners(c.i, c.j, c.k);
      std::array<double, 8> weights;
      grid::trilinear_weights(c.u, c.v, c.w, weights);
      for (int v = 0; v < 8; ++v) {
        idx[static_cast<std::size_t>(r) * 8 + v] = corners[static_cast<std::size_t>(v)];
        w[static_cast<std::size_t>(r) * 8 + v] = weights[static_cast<std::size_t>(v)];
      }
    }
    gx.resize(static_cast<std::size_t>(run));
    gy.resize(static_cast<std::size_t>(run));
    gz.resize(static_cast<std::size_t>(run));
    simd::trilinear_gather(block->velocity_x().data(), idx.data(), w.data(), run, gx.data());
    simd::trilinear_gather(block->velocity_y().data(), idx.data(), w.data(), run, gy.data());
    simd::trilinear_gather(block->velocity_z().data(), idx.data(), w.data(), run, gz.data());
    for (int r = 0; r < run; ++r) {
      out[begin + r] = Vec3{gx[static_cast<std::size_t>(r)], gy[static_cast<std::size_t>(r)],
                            gz[static_cast<std::size_t>(r)]};
    }
  }
}

}  // namespace vira::algo
