#include "algo/cfd_command.hpp"

namespace vira::algo {

void register_iso_commands(core::CommandRegistry& registry);
void register_vortex_commands(core::CommandRegistry& registry);
void register_pathline_commands(core::CommandRegistry& registry);
void register_streakline_commands(core::CommandRegistry& registry);
void register_query_commands(core::CommandRegistry& registry);
void register_extra_commands(core::CommandRegistry& registry);

void register_builtin_commands() {
  static const bool once = [] {
    auto& registry = core::CommandRegistry::global();
    register_iso_commands(registry);
    register_vortex_commands(registry);
    register_pathline_commands(registry);
    register_streakline_commands(registry);
    register_query_commands(registry);
    register_extra_commands(registry);
    return true;
  }();
  (void)once;
}

}  // namespace vira::algo
