#include "algo/cfd_command.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace vira::algo {

grid::StructuredBlock decode_block(const dms::Blob& blob) {
  if (!blob) {
    throw std::runtime_error("decode_block: null blob");
  }
  // Non-owning cursor straight over the cached bytes; the blob is shared
  // and immutable, so no copy is needed to get a read position.
  util::ByteReader reader(blob->bytes());
  return grid::StructuredBlock::deserialize(reader);
}

bool owns_position(std::size_t position, int group_rank, int group_size) {
  if (group_size <= 1) {
    return true;
  }
  return static_cast<int>(position % static_cast<std::size_t>(group_size)) == group_rank;
}

std::pair<int, int> chunk_range(int total, int group_rank, int group_size) {
  if (group_size <= 1) {
    return {0, total};
  }
  const int base = total / group_size;
  const int extra = total % group_size;
  const int begin = group_rank * base + std::min(group_rank, extra);
  const int size = base + (group_rank < extra ? 1 : 0);
  return {begin, begin + size};
}

BlockAccess::BlockAccess(core::CommandContext& context, std::string dataset, bool use_dms)
    : context_(context),
      dataset_(std::move(dataset)),
      use_dms_(use_dms),
      meta_(context.dataset_meta(dataset_)) {
  if (!use_dms_) {
    direct_reader_ = std::make_unique<grid::DatasetReader>(dataset_);
  }
}

BlockPtr BlockAccess::load(int step, int block) {
  if (BlockPtr cached = decoded_lookup(decoded_key(step, block))) {
    return cached;
  }
  util::ScopedPhase phase(context_.phases(), core::kPhaseRead);
  BlockPtr loaded = load_uncached(step, block);
  decoded_insert(decoded_key(step, block), loaded);
  return loaded;
}

BlockPtr BlockAccess::load_uncached(int step, int block) {
  if (use_dms_) {
    const auto blob = context_.proxy().request(dms::block_item(dataset_, step, block));
    return std::make_shared<const grid::StructuredBlock>(decode_block(blob));
  }
  return std::make_shared<const grid::StructuredBlock>(direct_reader_->read_block(step, block));
}

bool BlockAccess::async_capable() const {
  return use_dms_ && context_.task_pool() != nullptr;
}

util::Future<BlockPtr> BlockAccess::load_async(int step, int block) {
  const std::uint64_t key = decoded_key(step, block);
  if (BlockPtr cached = decoded_lookup(key)) {
    return util::Future<BlockPtr>::ready_value(std::move(cached));
  }
  if (!async_capable()) {
    throw std::logic_error("BlockAccess::load_async: no task pool / not in DMS mode");
  }
  // One pool task does the whole load+decode: request() keeps the DMS
  // dedup, strategy selection and prefetcher composition identical to the
  // serial path, and decoding on the pool thread keeps it off the
  // command's critical path.
  return context_.task_pool()->submit([this, step, block, key]() -> BlockPtr {
    const auto blob = context_.proxy().request(dms::block_item(dataset_, step, block));
    auto decoded = std::make_shared<const grid::StructuredBlock>(decode_block(blob));
    decoded_insert(key, decoded);
    return decoded;
  });
}

BlockPtr BlockAccess::decoded_lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(decoded_mutex_);
  auto it = decoded_.find(key);
  if (it == decoded_.end()) {
    return nullptr;
  }
  decoded_lru_.splice(decoded_lru_.begin(), decoded_lru_, it->second.second);
  ++decoded_hits_;
  return it->second.first;
}

void BlockAccess::decoded_insert(std::uint64_t key, BlockPtr block) {
  std::lock_guard<std::mutex> lock(decoded_mutex_);
  auto it = decoded_.find(key);
  if (it != decoded_.end()) {
    decoded_lru_.splice(decoded_lru_.begin(), decoded_lru_, it->second.second);
    it->second.first = std::move(block);
    return;
  }
  decoded_lru_.push_front(key);
  decoded_.emplace(key, std::make_pair(std::move(block), decoded_lru_.begin()));
  if (decoded_.size() > kDecodedCapacity) {
    decoded_.erase(decoded_lru_.back());
    decoded_lru_.pop_back();
  }
}

std::uint64_t BlockAccess::decoded_hits() const {
  std::lock_guard<std::mutex> lock(decoded_mutex_);
  return decoded_hits_;
}

void BlockAccess::prefetch(int step, int block) {
  if (use_dms_) {
    context_.proxy().code_prefetch(dms::block_item(dataset_, step, block));
  }
}

void BlockAccess::configure_prefetcher(const std::string& kind, bool wrap_steps) {
  if (!use_dms_) {
    return;
  }
  auto& proxy = context_.proxy();
  auto successor = core::make_block_successor(proxy.resolver(), meta_.block_count(),
                                              meta_.timestep_count(), wrap_steps);
  proxy.configure_prefetcher(kind, std::move(successor));
}

math::Vec3 parse_vec3(const util::ParamList& params, const std::string& key,
                      const math::Vec3& fallback) {
  const auto values = params.get_doubles(key);
  if (values.size() != 3) {
    return fallback;
  }
  return {values[0], values[1], values[2]};
}

}  // namespace vira::algo
