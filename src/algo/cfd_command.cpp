#include "algo/cfd_command.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace vira::algo {

grid::StructuredBlock decode_block(const dms::Blob& blob) {
  if (!blob) {
    throw std::runtime_error("decode_block: null blob");
  }
  util::ByteBuffer copy = *blob;  // decoding needs a read cursor
  copy.seek(0);
  return grid::StructuredBlock::deserialize(copy);
}

bool owns_position(std::size_t position, int group_rank, int group_size) {
  if (group_size <= 1) {
    return true;
  }
  return static_cast<int>(position % static_cast<std::size_t>(group_size)) == group_rank;
}

std::pair<int, int> chunk_range(int total, int group_rank, int group_size) {
  if (group_size <= 1) {
    return {0, total};
  }
  const int base = total / group_size;
  const int extra = total % group_size;
  const int begin = group_rank * base + std::min(group_rank, extra);
  const int size = base + (group_rank < extra ? 1 : 0);
  return {begin, begin + size};
}

BlockAccess::BlockAccess(core::CommandContext& context, std::string dataset, bool use_dms)
    : context_(context),
      dataset_(std::move(dataset)),
      use_dms_(use_dms),
      meta_(context.dataset_meta(dataset_)) {
  if (!use_dms_) {
    direct_reader_ = std::make_unique<grid::DatasetReader>(dataset_);
  }
}

std::shared_ptr<const grid::StructuredBlock> BlockAccess::load(int step, int block) {
  util::ScopedPhase phase(context_.phases(), core::kPhaseRead);
  if (use_dms_) {
    const auto blob = context_.proxy().request(dms::block_item(dataset_, step, block));
    return std::make_shared<const grid::StructuredBlock>(decode_block(blob));
  }
  return std::make_shared<const grid::StructuredBlock>(direct_reader_->read_block(step, block));
}

void BlockAccess::prefetch(int step, int block) {
  if (use_dms_) {
    context_.proxy().code_prefetch(dms::block_item(dataset_, step, block));
  }
}

void BlockAccess::configure_prefetcher(const std::string& kind, bool wrap_steps) {
  if (!use_dms_) {
    return;
  }
  auto& proxy = context_.proxy();
  auto successor = core::make_block_successor(proxy.resolver(), meta_.block_count(),
                                              meta_.timestep_count(), wrap_steps);
  proxy.configure_prefetcher(kind, std::move(successor));
}

math::Vec3 parse_vec3(const util::ParamList& params, const std::string& key,
                      const math::Vec3& fallback) {
  const auto values = params.get_doubles(key);
  if (values.size() != 3) {
    return fallback;
  }
  return {values[0], values[1], values[2]};
}

}  // namespace vira::algo
