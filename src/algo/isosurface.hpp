#pragma once

/// \file isosurface.hpp
/// Cell triangulation for isosurface extraction (paper Sec. 6.3: "the
/// active cells are triangulated according to the intersection points with
/// the iso-value").
///
/// Triangulation uses marching tetrahedra over the standard 6-tetrahedron
/// cube decomposition sharing the 0–6 diagonal. This decomposition uses the
/// *same* face diagonal on both sides of every cell interface (and of every
/// block interface with matching node positions), so the extracted surface
/// is watertight across cells without an ambiguous-case table — the
/// property the streaming design depends on, since fragments triangulated
/// independently must still "be assembled directly from the partial data"
/// (Sec. 5.1). A property test verifies closed surfaces are edge-2-manifold.

#include <cstdint>
#include <string>

#include "algo/geometry.hpp"
#include "grid/bsp_tree.hpp"
#include "grid/structured_block.hpp"
#include "simd/simd.hpp"

namespace vira::algo {

/// True if the cell's corner scalar range straddles `iso`.
bool cell_is_active(const grid::StructuredBlock& block, const std::string& field, float iso,
                    int ci, int cj, int ck);

/// Triangulates one cell, appending to `mesh`. Returns triangles added.
/// `with_normals` adds per-vertex shading normals from the field's metric-
/// term gradient, interpolated along the cut edges and oriented toward
/// increasing field values. Do not mix normal and bare fragments in one
/// mesh (TriangleMesh::merge rejects it).
std::size_t triangulate_cell(const grid::StructuredBlock& block, const std::string& field,
                             float iso, int ci, int cj, int ck, TriangleMesh& mesh,
                             bool with_normals = false);

/// Extracts over a cell range. Returns the number of active cells.
/// With `kernel == kSimd`, active cells are found by a vectorized per-row
/// straddle scan (simd::active_cell_mask) and only those are triangulated;
/// the emitted mesh is identical to the scalar path's.
std::size_t extract_isosurface_range(const grid::StructuredBlock& block,
                                     const std::string& field, float iso,
                                     const grid::CellRange& range, TriangleMesh& mesh,
                                     bool with_normals = false,
                                     simd::Kernel kernel = simd::default_kernel());

/// Extracts over the whole block.
std::size_t extract_isosurface(const grid::StructuredBlock& block, const std::string& field,
                               float iso, TriangleMesh& mesh, bool with_normals = false,
                               simd::Kernel kernel = simd::default_kernel());

}  // namespace vira::algo
