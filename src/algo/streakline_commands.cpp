/// \file streakline_commands.cpp
/// Streakline extraction — the paper's future work ("optimization of
/// particle tracing algorithms, e.g. pathlines as well as streaklines",
/// Sec. 9), built on the same two-level integration and DMS machinery as
/// the pathline commands.
///
/// A streakline is the locus of all particles released from a fixed seed
/// point over time: dye injected into the flow. The standard incremental
/// algorithm advances the whole set of live particles across each time
/// interval and injects one new particle per interval boundary; connecting
/// the particle positions in release order yields the streak.
///
///   streaklines.dataman — DMS-enabled, Markov prefetch (block requests of
///                         many particles interleave even less uniformly
///                         than a single pathline's).
///
/// Parameters: as pathlines.*, plus `releases_per_step` (default 1).

#include <algorithm>

#include "algo/block_sampler.hpp"
#include "algo/cfd_command.hpp"
#include "algo/payloads.hpp"
#include "util/rng.hpp"

namespace vira::algo {

namespace {

struct StreakParams {
  std::vector<math::Vec3> seeds;
  int step0 = 0;
  int step1 = -1;
  int releases_per_step = 1;
  IntegratorParams integrator;
};

StreakParams parse_streak_params(const util::ParamList& params, const grid::DatasetMeta& meta) {
  StreakParams p;
  p.step0 = static_cast<int>(params.get_int("step0", 0));
  p.step1 = static_cast<int>(params.get_int("step1", meta.timestep_count() - 1));
  p.releases_per_step = std::max(1, static_cast<int>(params.get_int("releases_per_step", 1)));
  p.integrator.h_init = params.get_double("h_init", 1e-3);
  p.integrator.h_min = params.get_double("h_min", 1e-6);
  p.integrator.h_max = params.get_double("h_max", 5e-2);
  p.integrator.tolerance = params.get_double("tolerance", 1e-5);
  p.integrator.max_steps = static_cast<int>(params.get_int("max_steps", 20000));

  const auto raw_seeds = params.get_doubles("seeds");
  for (std::size_t n = 0; n + 2 < raw_seeds.size(); n += 3) {
    p.seeds.push_back({raw_seeds[n], raw_seeds[n + 1], raw_seeds[n + 2]});
  }
  if (p.seeds.empty()) {
    const auto count = params.get_int("seed_count", 4);
    util::Rng rng(static_cast<std::uint64_t>(params.get_int("seed_rng", 7)));
    const auto bounds = meta.bounds();
    for (std::int64_t n = 0; n < count; ++n) {
      p.seeds.push_back({rng.uniform(bounds.lo.x, bounds.hi.x),
                         rng.uniform(bounds.lo.y, bounds.hi.y),
                         rng.uniform(bounds.lo.z, bounds.hi.z)});
    }
  }
  return p;
}

/// One live dye particle of a streak.
struct StreakParticle {
  math::Vec3 position;
  double h = 1e-3;
  double release_time = 0.0;
  bool alive = true;
};

class StreaklinesCommand final : public core::Command {
 public:
  std::string name() const override { return "streaklines.dataman"; }

  void execute(core::CommandContext& context) override {
    const std::string dataset = context.params().get_or("dataset", "");
    if (dataset.empty()) {
      throw std::invalid_argument("streaklines: 'dataset' parameter required");
    }
    BlockAccess access(context, dataset, /*use_dms=*/true);
    access.configure_prefetcher(context.params().get_or("prefetch", "markov"),
                                /*wrap_steps=*/true);
    const auto& meta = access.meta();
    const auto p = parse_streak_params(context.params(), meta);
    const int last_step = p.step1 < 0 ? meta.timestep_count() - 1 : p.step1;

    PolylineSet mine;
    context.phases().enter(core::kPhaseCompute);

    for (std::size_t s = 0; s < p.seeds.size(); ++s) {
      if (!owns_position(s, context.group_rank(), context.group_size())) {
        continue;
      }
      std::vector<StreakParticle> particles;

      for (int step = p.step0; step < last_step; ++step) {
        const auto& info_a = meta.steps[static_cast<std::size_t>(step)];
        const auto& info_b = meta.steps[static_cast<std::size_t>(step + 1)];
        BlockSampler level_a(info_a, [&](int block) { return access.load(step, block); });
        BlockSampler level_b(info_b,
                             [&](int block) { return access.load(step + 1, block); });

        // Inject fresh dye at sub-interval release times.
        const double dt = info_b.time - info_a.time;
        for (int r = 0; r < p.releases_per_step; ++r) {
          StreakParticle particle;
          particle.position = p.seeds[s];
          particle.h = p.integrator.h_init;
          particle.release_time = info_a.time + dt * r / p.releases_per_step;
          particles.push_back(particle);
        }

        // Advance every live particle through this interval. A particle
        // released mid-interval only integrates its remaining fraction.
        for (auto& particle : particles) {
          if (!particle.alive) {
            continue;
          }
          const double start = std::max(particle.release_time, info_a.time);
          std::vector<PathPoint> scratch;
          particle.alive = integrate_interval_two_level(
              level_a, level_b, start, info_b.time, particle.position, particle.h,
              p.integrator, scratch);
          if (!scratch.empty()) {
            particle.position = scratch.back().position;
          }
        }
      }

      // The streak: particle positions in release order (newest dye at the
      // seed, oldest furthest downstream — so iterate newest → oldest).
      mine.begin_line();
      const double t_end = meta.steps[static_cast<std::size_t>(last_step)].time;
      for (auto it = particles.rbegin(); it != particles.rend(); ++it) {
        if (it->alive) {
          mine.add_point(it->position, t_end - it->release_time);
        }
      }
      context.report_progress(static_cast<double>(s + 1) / p.seeds.size());
    }
    context.phases().stop();

    util::ByteBuffer part;
    mine.serialize(part);
    auto parts = context.gather_at_master(std::move(part));
    if (context.is_master()) {
      PolylineSet merged;
      for (auto& buffer : parts) {
        merged.merge(PolylineSet::deserialize(buffer));
      }
      context.send_final(encode_lines_fragment(merged));
    }
  }
};

}  // namespace

void register_streakline_commands(core::CommandRegistry& registry) {
  registry.register_command("streaklines.dataman",
                            [] { return std::make_unique<StreaklinesCommand>(); });
}

}  // namespace vira::algo
