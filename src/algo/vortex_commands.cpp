/// \file vortex_commands.cpp
/// λ2 vortex-region extraction commands (paper Sec. 6.3 / Sec. 7.2):
///
///   vortex.simple   (SimpleVortex)   — no data management.
///   vortex.dataman  (VortexDataMan)  — DMS + OBL prefetch; computes the
///                                      λ2 field per block, then extracts
///                                      the boundary isosurface, gathers at
///                                      the master.
///   vortex.streamed (StreamedVortex) — DMS + OBL prefetch; walks cells one
///                                      by one, computing λ2 lazily per
///                                      node, and streams a fragment every
///                                      `stream_cells` active cells —
///                                      avoiding a full λ2 pre-pass before
///                                      the first triangle leaves the node.

#include <algorithm>
#include <vector>

#include "algo/block_pipeline.hpp"
#include "algo/cfd_command.hpp"
#include "algo/isosurface.hpp"
#include "algo/kernel_stats.hpp"
#include "algo/lambda2.hpp"
#include "algo/payloads.hpp"
#include "util/timer.hpp"

namespace vira::algo {

namespace {

struct VortexParams {
  std::string dataset;
  int step = 0;
  float threshold = 0.0f;  ///< λ2 boundary ("about zero", Sec. 1.1)
  int stream_cells = 256;
  simd::Kernel kernel = simd::default_kernel();

  static VortexParams from(const util::ParamList& params) {
    VortexParams p;
    p.dataset = params.get_or("dataset", "");
    if (p.dataset.empty()) {
      throw std::invalid_argument("vortex command: 'dataset' parameter required");
    }
    p.step = static_cast<int>(params.get_int("step", 0));
    p.threshold = static_cast<float>(params.get_double("iso", 0.0));
    p.stream_cells = static_cast<int>(params.get_int("stream_cells", 256));
    const auto kernel_name = params.get_or("kernel", "");
    if (!kernel_name.empty()) {
      const auto kernel = simd::parse_kernel(kernel_name);
      if (!kernel) {
        throw std::invalid_argument("vortex command: unknown kernel '" + kernel_name + "'");
      }
      p.kernel = *kernel;
    }
    return p;
  }
};

void run_monolithic_vortex(core::CommandContext& context, bool use_dms) {
  const auto p = VortexParams::from(context.params());
  BlockAccess access(context, p.dataset, use_dms);
  if (use_dms) {
    access.configure_prefetcher(context.params().get_or("prefetch", "obl"), false);
  }

  const int blocks = access.meta().block_count();
  const auto [begin, end] = chunk_range(blocks, context.group_rank(), context.group_size());
  std::vector<BlockPipeline::Item> schedule;
  for (int b = begin; b < end; ++b) {
    schedule.emplace_back(p.step, b);
  }
  BlockPipeline pipeline(context, access, std::move(schedule),
                         BlockPipeline::window_from(context.params()));

  TriangleMesh mine;
  std::size_t active_cells = 0;
  std::int64_t kernel_cells = 0;
  util::WallTimer kernel_timer;
  kernel_timer.pause();
  context.phases().enter(core::kPhaseCompute);
  for (int b = begin; b < end; ++b) {
    const auto block = pipeline.next();
    // λ2 needs mutation (adds the scalar field): work on a private copy.
    grid::StructuredBlock working = *block;
    kernel_timer.resume();
    compute_lambda2_field(working, kLambda2Field, p.kernel);
    active_cells += extract_isosurface(working, kLambda2Field, p.threshold, mine,
                                       /*with_normals=*/false, p.kernel);
    kernel_timer.pause();
    kernel_cells += working.node_count() + working.cell_count();
    context.report_progress(static_cast<double>(b - begin + 1) / std::max(1, end - begin));
  }
  context.phases().stop();
  publish_kernel_stats(kernel_cells, kernel_timer.seconds(), p.kernel);

  util::ByteBuffer part;
  mine.serialize(part);
  part.write<std::uint64_t>(active_cells);
  auto parts = context.gather_at_master(std::move(part));
  if (context.is_master()) {
    TriangleMesh merged;
    std::uint64_t total_active = 0;
    for (auto& buffer : parts) {
      merged.merge(TriangleMesh::deserialize(buffer));
      total_active += buffer.read<std::uint64_t>();
    }
    context.send_final(encode_mesh_fragment(merged));
  }
}

class SimpleVortexCommand final : public core::Command {
 public:
  std::string name() const override { return "vortex.simple"; }
  void execute(core::CommandContext& context) override {
    run_monolithic_vortex(context, /*use_dms=*/false);
  }
};

class VortexDataManCommand final : public core::Command {
 public:
  std::string name() const override { return "vortex.dataman"; }
  void execute(core::CommandContext& context) override {
    run_monolithic_vortex(context, /*use_dms=*/true);
  }
};

/// Streaming variant: "processes all cells one by one, computes the λ2
/// value at each grid point, and determines immediately if it is an active
/// cell [...] Whenever this active cell list reaches a user specified
/// length, it is given to the triangulator and the result is directly
/// transmitted to the visualization client."
class StreamedVortexCommand final : public core::Command {
 public:
  std::string name() const override { return "vortex.streamed"; }

  void execute(core::CommandContext& context) override {
    const auto p = VortexParams::from(context.params());
    BlockAccess access(context, p.dataset, /*use_dms=*/true);
    access.configure_prefetcher(context.params().get_or("prefetch", "obl"), false);

    const int blocks = access.meta().block_count();
    const auto [begin, end] = chunk_range(blocks, context.group_rank(), context.group_size());
    std::vector<BlockPipeline::Item> schedule;
    for (int b = begin; b < end; ++b) {
      schedule.emplace_back(p.step, b);
    }
    BlockPipeline pipeline(context, access, std::move(schedule),
                           BlockPipeline::window_from(context.params()));

    std::uint64_t total_triangles = 0;
    std::uint64_t total_active = 0;

    context.phases().enter(core::kPhaseCompute);
    for (int b = begin; b < end; ++b) {
      const auto block_ptr = pipeline.next();
      grid::StructuredBlock working = *block_ptr;
      const auto lambda2_values = working.scalar(kLambda2Field);  // span into the SoA store
      // Lazy per-node λ2 with a computed-bitmap: only nodes belonging to
      // visited cells are evaluated, and the first fragment leaves before
      // the block's field pass would have finished.
      std::vector<std::uint8_t> computed(lambda2_values.size(), 0);
      auto lambda2_node = [&](int i, int j, int k) -> float {
        const auto idx = working.node_index(i, j, k);
        if (!computed[static_cast<std::size_t>(idx)]) {
          lambda2_values[static_cast<std::size_t>(idx)] =
              static_cast<float>(lambda2_at(working, i, j, k));
          computed[static_cast<std::size_t>(idx)] = 1;
        }
        return lambda2_values[static_cast<std::size_t>(idx)];
      };

      struct ActiveCell {
        int ci, cj, ck;
      };
      std::vector<ActiveCell> active_list;
      auto flush = [&]() {
        if (active_list.empty()) {
          return;
        }
        TriangleMesh fragment;
        for (const auto& cell : active_list) {
          triangulate_cell(working, kLambda2Field, p.threshold, cell.ci, cell.cj, cell.ck,
                           fragment);
        }
        total_triangles += fragment.triangle_count();
        active_list.clear();
        if (!fragment.empty()) {
          context.stream_partial(encode_mesh_fragment(fragment));
        }
      };

      for (int ck = 0; ck < working.cells_k(); ++ck) {
        for (int cj = 0; cj < working.cells_j(); ++cj) {
          for (int ci = 0; ci < working.cells_i(); ++ci) {
            bool below = false;
            bool at_or_above = false;
            for (int dk = 0; dk < 2; ++dk) {
              for (int dj = 0; dj < 2; ++dj) {
                for (int di = 0; di < 2; ++di) {
                  const float value = lambda2_node(ci + di, cj + dj, ck + dk);
                  (value < p.threshold ? below : at_or_above) = true;
                }
              }
            }
            if (below && at_or_above) {
              active_list.push_back({ci, cj, ck});
              ++total_active;
              if (active_list.size() >= static_cast<std::size_t>(p.stream_cells)) {
                flush();
              }
            }
          }
        }
      }
      flush();
      context.report_progress(static_cast<double>(b - begin + 1) / std::max(1, end - begin));
    }
    context.phases().stop();

    util::ByteBuffer part;
    part.write<std::uint64_t>(total_triangles);
    part.write<std::uint64_t>(total_active);
    auto parts = context.gather_at_master(std::move(part));
    if (context.is_master()) {
      std::uint64_t triangles = 0;
      std::uint64_t cells = 0;
      for (auto& buffer : parts) {
        triangles += buffer.read<std::uint64_t>();
        cells += buffer.read<std::uint64_t>();
      }
      context.send_final(encode_summary(triangles, cells, 0));
    }
  }
};

}  // namespace

void register_vortex_commands(core::CommandRegistry& registry) {
  registry.register_command("vortex.simple",
                            [] { return std::make_unique<SimpleVortexCommand>(); });
  registry.register_command("vortex.dataman",
                            [] { return std::make_unique<VortexDataManCommand>(); });
  registry.register_command("vortex.streamed",
                            [] { return std::make_unique<StreamedVortexCommand>(); });
}

}  // namespace vira::algo
