#pragma once

/// \file backend.hpp
/// The assembled Viracocha post-processing backend.
///
/// Owns the whole server side of Figure 2: the rank transport, the
/// scheduler (rank 0), N workers (ranks 1..N, one thread each), the DMS
/// (central data server + one proxy per worker, with peer transfer wired
/// across proxies), and the client attachment point (in-process link or a
/// real TCP listener).

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "comm/client_link.hpp"
#include "comm/fault_transport.hpp"
#include "core/scheduler.hpp"
#include "core/worker.hpp"
#include "dms/data_server.hpp"
#include "net/event_loop.hpp"

namespace vira::core {

struct BackendConfig {
  int workers = 4;

  /// Which TCP frontend serve_tcp() starts. kEpoll (default) runs the
  /// vira::net event loop: one thread multiplexes all client sockets with
  /// backpressure, negotiated wire compression, and event-driven scheduler
  /// wakeups. kBlocking keeps the seed's accept-thread + blocking-socket
  /// links (one recv poll per link per scheduler tick) as the conservative
  /// fallback; those links never negotiate features.
  enum class NetFrontend { kEpoll, kBlocking };
  NetFrontend net_frontend = NetFrontend::kEpoll;
  /// Event-loop tuning (threads, send budgets, reap deadline, compression
  /// policy). Ignored by the blocking frontend.
  net::NetConfig net;

  /// Per-worker primary cache budget; "fbr" won the paper's evaluation.
  std::uint64_t l1_cache_bytes = 256ull << 20;
  std::string cache_policy = "fbr";
  /// Secondary (disk) cache directory; empty disables the tier.
  /// "<auto>" picks a temp dir per proxy.
  std::string l2_directory;
  std::uint64_t l2_cache_bytes = 1ull << 30;

  bool async_prefetch = true;
  std::size_t prefetch_depth = 2;

  dms::LoadEnvironment environment;
  /// Artificial storage slow-down (µs per MiB) for I/O-sensitive benches.
  double read_delay_us_per_mb = 0.0;

  /// Route proxy↔server DMS traffic through rank messages serviced by the
  /// scheduler (the paper's distributed wiring, at the cost of "additional
  /// communication for every load operation", Sec. 4.3). false = direct
  /// calls (single-process wiring).
  bool dms_over_messages = false;

  /// Sharded DMS (DESIGN.md §12). dms_shards > 1 spreads block ownership
  /// over the first min(dms_shards, workers) proxies by consistent hashing;
  /// misses route proxy→proxy over kTagPeerFetch instead of asking the
  /// central server for a strategy. dms_replication ≥ 2 places every block
  /// on R owners so a killed rank's blocks re-serve from a surviving
  /// replica. The default (1) keeps the legacy central path byte-identical.
  int dms_shards = 1;
  int dms_replication = 1;
  /// Per-attempt peer-fetch timeout before an owner is declared dead and
  /// the next replica is tried.
  int dms_peer_timeout_ms = 50;

  /// Liveness / recovery policy (DESIGN.md "Failure model").
  WorkerConfig worker;
  SchedulerConfig scheduler;

  /// When set, the rank transport is wrapped in a FaultInjectingTransport
  /// (drops / duplicates / delays / rank kills) — the failure-model test
  /// harness. Unset = the plain transport, zero overhead.
  std::optional<comm::FaultInjectionConfig> fault_injection;
};

class Backend {
 public:
  explicit Backend(BackendConfig config = BackendConfig{});
  ~Backend();
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// In-process client connection (the examples' default).
  std::shared_ptr<comm::ClientLink> connect();

  /// Starts the configured TCP frontend (BackendConfig::net_frontend);
  /// every accepted connection becomes an additional client. Returns the
  /// bound port.
  std::uint16_t serve_tcp(std::uint16_t port = 0);

  /// Stops scheduler, workers and the TCP acceptor. Idempotent.
  void shutdown();

  /// --- introspection for benches and tests --------------------------------
  int worker_count() const { return config_.workers; }
  VmbDataSource& source() { return *source_; }
  dms::DataServer& data_server() { return *data_server_; }
  dms::DataProxy& worker_proxy(int index) { return *proxies_.at(static_cast<std::size_t>(index)); }
  Scheduler& scheduler() { return *scheduler_; }
  /// The injection harness, or nullptr when fault_injection was not set.
  comm::FaultInjectingTransport* fault_transport() { return fault_transport_.get(); }
  /// The epoll frontend, or nullptr (blocking frontend / serve_tcp not called).
  net::EventLoop* event_loop() { return event_loop_.get(); }

  /// Drops every proxy's cache (cold-start switch).
  void clear_caches();

  /// Merged DMS counters over all proxies.
  dms::DmsCounters dms_counters() const;

 private:
  BackendConfig config_;
  std::shared_ptr<comm::InProcTransport> transport_;
  std::shared_ptr<comm::FaultInjectingTransport> fault_transport_;
  std::shared_ptr<VmbDataSource> source_;
  std::shared_ptr<dms::DataServer> data_server_;
  std::vector<std::shared_ptr<dms::DataProxy>> proxies_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<Scheduler> scheduler_;

  std::vector<std::thread> worker_threads_;
  std::thread scheduler_thread_;

  std::unique_ptr<comm::TcpListener> listener_;
  std::thread accept_thread_;
  std::unique_ptr<net::EventLoop> event_loop_;
  std::atomic<bool> down_{false};
};

}  // namespace vira::core
