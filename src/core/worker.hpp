#pragma once

/// \file worker.hpp
/// Worker process of the middle layer (paper Sec. 3).
///
/// A worker blocks on its communicator until the scheduler sends an
/// ExecuteOrder, instantiates the named command from the registry, runs it
/// with a fully wired CommandContext, and reports completion (with its
/// phase breakdown) back to the scheduler. Streamed fragments and final
/// results are relayed through the scheduler to the client link.

#include <memory>

#include "comm/communicator.hpp"
#include "core/command.hpp"
#include "core/protocol.hpp"
#include "core/vmb_data_source.hpp"
#include "dms/data_proxy.hpp"

namespace vira::core {

class Worker {
 public:
  /// `comm` is shared so the DMS's RemoteServerApi (if configured) can use
  /// the same rank endpoint from the proxy's prefetch thread.
  Worker(std::shared_ptr<comm::Communicator> comm, std::shared_ptr<dms::DataProxy> proxy,
         std::shared_ptr<VmbDataSource> source, const CommandRegistry* registry);

  /// Blocks until shutdown (kTagShutdown or transport closed).
  void run();

  dms::DataProxy& proxy() { return *proxy_; }
  int rank() const { return comm_->rank(); }

 private:
  void execute_order(ExecuteOrder order);

  std::shared_ptr<comm::Communicator> comm_;
  std::shared_ptr<dms::DataProxy> proxy_;
  std::shared_ptr<VmbDataSource> source_;
  const CommandRegistry* registry_;
};

}  // namespace vira::core
