#pragma once

/// \file worker.hpp
/// Worker process of the middle layer (paper Sec. 3).
///
/// A worker blocks on its communicator until the scheduler sends an
/// ExecuteOrder, instantiates the named command from the registry, runs it
/// with a fully wired CommandContext, and reports completion (with its
/// phase breakdown) back to the scheduler. Streamed fragments and final
/// results are relayed through the scheduler to the client link.
///
/// Liveness: while run() is active a dedicated heartbeat thread sends
/// kTagHeartbeat beacons (rank + currently executed request) every
/// `WorkerConfig::heartbeat_interval`, even while the service thread is
/// deep inside a long command. The same thread polls for kTagGroupAbort so
/// a worker stuck in a collective on a dead peer unblocks and returns to
/// the pool (see DESIGN.md "Failure model").

#include <atomic>
#include <memory>
#include <thread>

#include "comm/communicator.hpp"
#include "core/command.hpp"
#include "core/protocol.hpp"
#include "core/vmb_data_source.hpp"
#include "dms/data_proxy.hpp"

namespace vira::core {

struct WorkerConfig {
  /// Zero disables heartbeats (and abort polling) entirely — the seed's
  /// original fail-stop behavior.
  std::chrono::milliseconds heartbeat_interval{25};
  /// Threads of the node's task pool backing the pipelined block executor
  /// (algo::BlockPipeline). Zero disables the pool: every command runs its
  /// load loop strictly serially, the seed's original behavior.
  int pipeline_threads = 2;
};

class Worker {
 public:
  /// `comm` is shared so the DMS's RemoteServerApi (if configured) can use
  /// the same rank endpoint from the proxy's prefetch thread.
  Worker(std::shared_ptr<comm::Communicator> comm, std::shared_ptr<dms::DataProxy> proxy,
         std::shared_ptr<VmbDataSource> source, const CommandRegistry* registry,
         WorkerConfig config = WorkerConfig{});

  /// Blocks until shutdown (kTagShutdown or transport closed).
  void run();

  dms::DataProxy& proxy() { return *proxy_; }
  int rank() const { return comm_->rank(); }

 private:
  void execute_order(ExecuteOrder order);
  void heartbeat_loop();

  /// Live only while run() is active (pool threads are clock participants
  /// and must begin/end inside the service scope, like the heartbeat).
  std::unique_ptr<util::TaskPool> pool_;
  std::shared_ptr<comm::Communicator> comm_;
  std::shared_ptr<dms::DataProxy> proxy_;
  std::shared_ptr<VmbDataSource> source_;
  const CommandRegistry* registry_;
  WorkerConfig config_;

  /// Internal id of the request being executed (0 = idle); read by the
  /// heartbeat thread so beacons carry what the worker is doing.
  std::atomic<std::uint64_t> current_request_{0};
  /// Internal id the scheduler told us to abandon (0 = none).
  std::atomic<std::uint64_t> abort_request_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace vira::core
