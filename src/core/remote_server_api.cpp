#include "core/remote_server_api.hpp"

#include "dms/data_server.hpp"

namespace vira::core {

RemoteServerApi::RemoteServerApi(std::shared_ptr<comm::Communicator> comm)
    : comm_(std::move(comm)) {
  if (!comm_) {
    throw std::invalid_argument("RemoteServerApi: communicator required");
  }
}

util::ByteBuffer RemoteServerApi::call(DmsOp op, util::ByteBuffer args) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int reply_tag =
      kDmsReplyTagBase + static_cast<int>(next_sequence_++ % kDmsReplyTagRange);
  util::ByteBuffer payload;
  payload.write<std::uint8_t>(static_cast<std::uint8_t>(op));
  payload.write<std::int32_t>(reply_tag);
  payload.write_raw(args.data(), args.size());
  comm_->send(0, kTagDmsRequest, std::move(payload));
  return comm_->recv(0, reply_tag).payload;
}

void RemoteServerApi::notify(DmsOp op, util::ByteBuffer args) {
  util::ByteBuffer payload;
  payload.write<std::uint8_t>(static_cast<std::uint8_t>(op));
  payload.write<std::int32_t>(-1);  // no reply expected
  payload.write_raw(args.data(), args.size());
  comm_->send(0, kTagDmsNotify, std::move(payload));
}

dms::ItemId RemoteServerApi::intern(const dms::DataItemName& name) {
  util::ByteBuffer args;
  name.serialize(args);
  auto reply = call(DmsOp::kIntern, std::move(args));
  return reply.read<dms::ItemId>();
}

std::optional<dms::DataItemName> RemoteServerApi::lookup(dms::ItemId id) {
  util::ByteBuffer args;
  args.write<dms::ItemId>(id);
  auto reply = call(DmsOp::kLookup, std::move(args));
  if (reply.read<std::uint8_t>() == 0) {
    return std::nullopt;
  }
  return dms::DataItemName::deserialize(reply);
}

dms::StrategyDecision RemoteServerApi::choose_strategy(int proxy, dms::ItemId id,
                                                       std::uint64_t item_bytes,
                                                       std::uint64_t file_bytes,
                                                       const std::string& file_key) {
  util::ByteBuffer args;
  args.write<std::int32_t>(proxy);
  args.write<dms::ItemId>(id);
  args.write<std::uint64_t>(item_bytes);
  args.write<std::uint64_t>(file_bytes);
  args.write_string(file_key);
  auto reply = call(DmsOp::kChooseStrategy, std::move(args));
  dms::StrategyDecision decision;
  decision.kind = static_cast<dms::StrategyKind>(reply.read<std::uint8_t>());
  decision.peer = reply.read<std::int32_t>();
  return decision;
}

void RemoteServerApi::report_insert(int proxy, dms::ItemId id) {
  util::ByteBuffer args;
  args.write<std::int32_t>(proxy);
  args.write<dms::ItemId>(id);
  notify(DmsOp::kReportInsert, std::move(args));
}

void RemoteServerApi::report_evict(int proxy, dms::ItemId id) {
  util::ByteBuffer args;
  args.write<std::int32_t>(proxy);
  args.write<dms::ItemId>(id);
  notify(DmsOp::kReportEvict, std::move(args));
}

void RemoteServerApi::begin_file_read(const std::string& file_key) {
  util::ByteBuffer args;
  args.write_string(file_key);
  notify(DmsOp::kBeginFileRead, std::move(args));
}

void RemoteServerApi::end_file_read(const std::string& file_key) {
  util::ByteBuffer args;
  args.write_string(file_key);
  notify(DmsOp::kEndFileRead, std::move(args));
}

void RemoteServerApi::observe_disk_bandwidth(double bytes_per_second) {
  util::ByteBuffer args;
  args.write<double>(bytes_per_second);
  notify(DmsOp::kObserveBandwidth, std::move(args));
}

void service_dms_message(dms::DataServer& server, comm::Communicator& comm, comm::Message& msg,
                         bool expects_reply) {
  const auto op = static_cast<DmsOp>(msg.payload.read<std::uint8_t>());
  const auto reply_tag = msg.payload.read<std::int32_t>();

  util::ByteBuffer reply;
  switch (op) {
    case DmsOp::kIntern: {
      const auto name = dms::DataItemName::deserialize(msg.payload);
      reply.write<dms::ItemId>(server.intern(name));
      break;
    }
    case DmsOp::kLookup: {
      const auto id = msg.payload.read<dms::ItemId>();
      const auto name = server.lookup(id);
      reply.write<std::uint8_t>(name ? 1 : 0);
      if (name) {
        name->serialize(reply);
      }
      break;
    }
    case DmsOp::kChooseStrategy: {
      const auto proxy = msg.payload.read<std::int32_t>();
      const auto id = msg.payload.read<dms::ItemId>();
      const auto item_bytes = msg.payload.read<std::uint64_t>();
      const auto file_bytes = msg.payload.read<std::uint64_t>();
      const auto file_key = msg.payload.read_string();
      const auto decision = server.choose_strategy(proxy, id, item_bytes, file_bytes, file_key);
      reply.write<std::uint8_t>(static_cast<std::uint8_t>(decision.kind));
      reply.write<std::int32_t>(decision.peer);
      break;
    }
    case DmsOp::kReportInsert: {
      const auto proxy = msg.payload.read<std::int32_t>();
      const auto id = msg.payload.read<dms::ItemId>();
      server.report_insert(proxy, id);
      break;
    }
    case DmsOp::kReportEvict: {
      const auto proxy = msg.payload.read<std::int32_t>();
      const auto id = msg.payload.read<dms::ItemId>();
      server.report_evict(proxy, id);
      break;
    }
    case DmsOp::kBeginFileRead:
      server.begin_file_read(msg.payload.read_string());
      break;
    case DmsOp::kEndFileRead:
      server.end_file_read(msg.payload.read_string());
      break;
    case DmsOp::kObserveBandwidth:
      server.observe_disk_bandwidth(msg.payload.read<double>());
      break;
  }

  if (expects_reply && reply_tag >= 0) {
    comm.send(msg.source, reply_tag, std::move(reply));
  }
}

}  // namespace vira::core
