#include "core/command.hpp"

#include <algorithm>

namespace vira::core {

CommandContext::CommandContext(std::uint64_t request_id, const util::ParamList& params,
                               comm::Communicator* comm, std::vector<int> group_ranks,
                               int master_rank, dms::DataProxy* proxy, Hooks hooks,
                               util::TaskPool* pool)
    : request_id_(request_id),
      params_(params),
      comm_(comm),
      group_ranks_(std::move(group_ranks)),
      master_rank_(master_rank),
      proxy_(proxy),
      hooks_(std::move(hooks)),
      pool_(pool) {
  if (comm_ != nullptr) {
    const auto it = std::find(group_ranks_.begin(), group_ranks_.end(), comm_->rank());
    group_rank_ = it != group_ranks_.end()
                      ? static_cast<int>(std::distance(group_ranks_.begin(), it))
                      : -1;
  } else if (!group_ranks_.empty()) {
    group_rank_ = 0;
  }
}

bool CommandContext::is_master() const {
  return comm_ == nullptr || comm_->rank() == master_rank_;
}

comm::Communicator& CommandContext::comm() {
  if (comm_ == nullptr) {
    throw std::logic_error("CommandContext: no communicator (single-process context)");
  }
  return *comm_;
}

dms::DataProxy& CommandContext::proxy() {
  if (proxy_ == nullptr) {
    throw std::logic_error("CommandContext: no data proxy attached");
  }
  return *proxy_;
}

const grid::DatasetMeta& CommandContext::dataset_meta(const std::string& dir) {
  if (!hooks_.dataset_meta) {
    throw std::logic_error("CommandContext: no dataset meta hook");
  }
  return hooks_.dataset_meta(dir);
}

bool CommandContext::aborted() const { return hooks_.should_abort && hooks_.should_abort(); }

void CommandContext::check_abort() const {
  if (aborted()) {
    throw CommandAborted();
  }
}

comm::Message CommandContext::recv_abortable(int source, int tag) {
  // Bounded waits so an abandoned attempt notices the abort within one
  // slice instead of blocking forever on a dead peer.
  constexpr auto kAbortSlice = std::chrono::milliseconds(20);
  while (true) {
    if (auto msg = comm_->try_recv(source, tag, kAbortSlice)) {
      return std::move(*msg);
    }
    check_abort();
  }
}

std::vector<util::ByteBuffer> CommandContext::gather_at_master(util::ByteBuffer part) {
  // Group-internal gather over point-to-point messages; the tag encodes the
  // request so packets of concurrent commands cannot mix.
  const int tag = static_cast<int>(request_id_ % 1000000) + 2000000;
  if (comm_ == nullptr || group_size() <= 1) {
    std::vector<util::ByteBuffer> parts;
    parts.push_back(std::move(part));
    return parts;
  }
  if (!is_master()) {
    comm_->send(master_rank_, tag, std::move(part));
    return {};
  }
  std::vector<util::ByteBuffer> parts(static_cast<std::size_t>(group_size()));
  for (std::size_t member = 0; member < group_ranks_.size(); ++member) {
    const int rank = group_ranks_[member];
    if (rank == comm_->rank()) {
      parts[member] = std::move(part);
    } else {
      parts[member] = recv_abortable(rank, tag).payload;
    }
  }
  return parts;
}

void CommandContext::group_barrier() {
  if (comm_ == nullptr || group_size() <= 1) {
    return;
  }
  const int tag = static_cast<int>(request_id_ % 1000000) + 3000000;
  if (comm_->rank() == master_rank_) {
    for (const int rank : group_ranks_) {
      if (rank != master_rank_) {
        (void)recv_abortable(rank, tag);
      }
    }
    for (const int rank : group_ranks_) {
      if (rank != master_rank_) {
        comm_->send(rank, tag, {});
      }
    }
  } else {
    comm_->send(master_rank_, tag, {});
    (void)recv_abortable(master_rank_, tag);
  }
}

void CommandContext::stream_partial(util::ByteBuffer fragment) {
  if (hooks_.stream_partial) {
    util::ScopedPhase phase(phases_, kPhaseSend);
    hooks_.stream_partial(std::move(fragment));
  }
}

void CommandContext::send_final(util::ByteBuffer result) {
  if (hooks_.send_final) {
    util::ScopedPhase phase(phases_, kPhaseSend);
    hooks_.send_final(std::move(result));
  }
}

void CommandContext::report_progress(double fraction) {
  if (hooks_.report_progress) {
    hooks_.report_progress(fraction);
  }
}

void CommandRegistry::register_command(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

std::unique_ptr<Command> CommandRegistry::create(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::invalid_argument("CommandRegistry: unknown command '" + name + "'");
  }
  return it->second();
}

bool CommandRegistry::knows(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) > 0;
}

std::vector<std::string> CommandRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

CommandRegistry& CommandRegistry::global() {
  static CommandRegistry registry;
  return registry;
}

}  // namespace vira::core
