#include "core/backend.hpp"

#include <filesystem>

#include "core/remote_server_api.hpp"
#include "util/log.hpp"

namespace vira::core {

Backend::Backend(BackendConfig config) : config_(std::move(config)) {
  if (config_.workers < 1) {
    throw std::invalid_argument("Backend: need at least one worker");
  }

  transport_ = std::make_shared<comm::InProcTransport>(config_.workers + 1);
  std::shared_ptr<comm::Transport> rank_transport = transport_;
  if (config_.fault_injection) {
    fault_transport_ =
        std::make_shared<comm::FaultInjectingTransport>(transport_, *config_.fault_injection);
    rank_transport = fault_transport_;
  }
  source_ = std::make_shared<VmbDataSource>();
  source_->set_read_delay_us_per_mb(config_.read_delay_us_per_mb);
  data_server_ = std::make_shared<dms::DataServer>(config_.environment);

  // Worker communicators first: the message-based DMS wiring shares them
  // between the worker loop and the proxy's prefetch thread.
  std::vector<std::shared_ptr<comm::Communicator>> worker_comms;
  for (int index = 0; index < config_.workers; ++index) {
    worker_comms.push_back(std::make_shared<comm::Communicator>(rank_transport, index + 1));
  }

  // One proxy per worker node (paper Fig. 3).
  for (int index = 0; index < config_.workers; ++index) {
    dms::DataProxyConfig proxy_config;
    proxy_config.proxy_id = index;
    proxy_config.cache.l1_capacity_bytes = config_.l1_cache_bytes;
    proxy_config.cache.policy = config_.cache_policy;
    if (config_.l2_directory == "<auto>") {
      proxy_config.cache.l2_directory =
          (std::filesystem::temp_directory_path() /
           ("vira_l2_proxy_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)) + "_" +
            std::to_string(index)))
              .string();
      proxy_config.cache.l2_capacity_bytes = config_.l2_cache_bytes;
    } else if (!config_.l2_directory.empty()) {
      proxy_config.cache.l2_directory = config_.l2_directory + "/proxy_" + std::to_string(index);
      proxy_config.cache.l2_capacity_bytes = config_.l2_cache_bytes;
    }
    proxy_config.async_prefetch = config_.async_prefetch;
    proxy_config.prefetch_depth = config_.prefetch_depth;
    std::shared_ptr<dms::ServerApi> server_api = data_server_;
    if (config_.dms_over_messages) {
      server_api = std::make_shared<RemoteServerApi>(worker_comms[static_cast<std::size_t>(index)]);
    }
    proxies_.push_back(std::make_shared<dms::DataProxy>(proxy_config, server_api, source_));
  }

  // Peer transfer across proxies ("across work group boundaries").
  for (auto& proxy : proxies_) {
    proxy->set_peer_fetch([this](int peer, dms::ItemId id) -> dms::Blob {
      if (peer < 0 || peer >= static_cast<int>(proxies_.size())) {
        return nullptr;
      }
      return proxies_[static_cast<std::size_t>(peer)]->cache().peek(id);
    });
  }

  // Sharded DMS: each proxy gets its own ShardMap instance with the same
  // (seed, members, vnodes) — identical routing with no shared state, the
  // way distributed ranks would hold it. Death marks stay local to each
  // proxy (learned from its own fetch timeouts), like a real deployment.
  if (config_.dms_shards > 1) {
    dms::ShardMap::Config shard_config;
    shard_config.members = std::min(config_.dms_shards, config_.workers);
    shard_config.replication = config_.dms_replication;
    for (int index = 0; index < config_.workers; ++index) {
      proxies_[static_cast<std::size_t>(index)]->configure_sharding(
          std::make_shared<dms::ShardMap>(shard_config),
          worker_comms[static_cast<std::size_t>(index)],
          std::chrono::milliseconds(config_.dms_peer_timeout_ms));
    }
    // Bump invalidation must reach every replica, not just the scheduler's
    // result cache: fan the name service's version feed out to all proxies.
    data_server_->names().on_bump([this](std::uint64_t version) {
      for (auto& proxy : proxies_) {
        proxy->on_data_version(version);
      }
    });
  }

  scheduler_ = std::make_unique<Scheduler>(rank_transport, config_.workers, config_.scheduler);
  if (config_.dms_over_messages) {
    scheduler_->set_data_server(data_server_);
  }
  for (int index = 0; index < config_.workers; ++index) {
    workers_.push_back(std::make_unique<Worker>(worker_comms[static_cast<std::size_t>(index)],
                                                proxies_[index], source_,
                                                &CommandRegistry::global(), config_.worker));
  }

  scheduler_thread_ = std::thread([this] { scheduler_->run(); });
  for (auto& worker : workers_) {
    worker_threads_.emplace_back([&worker] { worker->run(); });
  }
}

Backend::~Backend() { shutdown(); }

std::shared_ptr<comm::ClientLink> Backend::connect() {
  auto [client_side, server_side] = comm::make_inproc_link_pair();
  scheduler_->attach_client(server_side);
  return client_side;
}

std::uint16_t Backend::serve_tcp(std::uint16_t port) {
  if (config_.net_frontend == BackendConfig::NetFrontend::kEpoll) {
    event_loop_ = std::make_unique<net::EventLoop>(port, config_.net);
    event_loop_->set_on_accept([this](std::shared_ptr<comm::ClientLink> link) {
      VIRA_INFO("backend") << "TCP client connected (event loop)";
      scheduler_->attach_client(std::move(link));
    });
    // Event-driven request pickup: inbound frames (and link closes) pop the
    // scheduler out of its idle poll wait instead of waiting for the tick.
    event_loop_->set_on_readable([this] { scheduler_->nudge(); });
    event_loop_->start();
    const std::uint16_t bound = event_loop_->port();
    VIRA_INFO("backend") << "listening on 127.0.0.1:" << bound << " (epoll frontend, "
                         << config_.net.threads << " thread(s))";
    return bound;
  }
  listener_ = std::make_unique<comm::TcpListener>(port);
  const std::uint16_t bound = listener_->port();
  accept_thread_ = std::thread([this] {
    // Every accepted connection becomes an additional client; the
    // scheduler routes each request's results back to its submitter.
    while (!down_.load()) {
      auto link = listener_->accept(std::chrono::milliseconds(200));
      if (link) {
        VIRA_INFO("backend") << "TCP client connected";
        scheduler_->attach_client(std::shared_ptr<comm::ClientLink>(link.release()));
      }
    }
  });
  VIRA_INFO("backend") << "listening on 127.0.0.1:" << bound;
  return bound;
}

void Backend::shutdown() {
  if (down_.exchange(true)) {
    return;
  }
  // Wake the acceptor first (half-close keeps the fd valid while the
  // thread may still be inside accept()), join it, then release sockets.
  if (listener_) {
    listener_->stop();
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listener_) {
    listener_->close();
  }
  // Stop the event loop before the scheduler: teardown closes every link's
  // incoming queue, so a scheduler tick mid-shutdown sees closed links, not
  // a recv racing a dying loop thread.
  if (event_loop_) {
    event_loop_->stop();
  }
  scheduler_->stop();
  if (scheduler_thread_.joinable()) {
    scheduler_thread_.join();
  }
  // Close the transport BEFORE joining workers: a rank "killed" by the
  // fault harness can never receive the orderly kTagShutdown (delivery to
  // it is suppressed), so its service loop only exits via TransportClosed.
  if (fault_transport_) {
    fault_transport_->shutdown();  // forwards to the inner transport
  } else {
    transport_->shutdown();
  }
  for (auto& thread : worker_threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  // Drain every proxy's prefetch pipeline BEFORE members destruct: an
  // in-flight speculative load may peer-peek into a sibling proxy's cache,
  // and the proxies_ vector destroys siblings one by one.
  for (auto& proxy : proxies_) {
    proxy->quiesce();
  }
}

void Backend::clear_caches() {
  for (auto& proxy : proxies_) {
    proxy->clear_cache();
  }
}

dms::DmsCounters Backend::dms_counters() const {
  dms::DmsCounters total;
  for (const auto& proxy : proxies_) {
    const auto counters = proxy->stats().snapshot();
    total.requests += counters.requests;
    total.l1_hits += counters.l1_hits;
    total.l2_hits += counters.l2_hits;
    total.misses += counters.misses;
    total.prefetch_issued += counters.prefetch_issued;
    total.prefetch_useful += counters.prefetch_useful;
    total.evictions_l1 += counters.evictions_l1;
    total.evictions_l2 += counters.evictions_l2;
    total.l2_respills += counters.l2_respills;
    total.demotions_dropped_oversize += counters.demotions_dropped_oversize;
    total.demotions_dropped_io += counters.demotions_dropped_io;
    total.peer_fetches += counters.peer_fetches;
    total.peer_fetch_misses += counters.peer_fetch_misses;
    total.peer_fetch_timeouts += counters.peer_fetch_timeouts;
    total.peer_pushes += counters.peer_pushes;
    total.replica_promotions += counters.replica_promotions;
    total.peer_fallback_disk += counters.peer_fallback_disk;
    total.shard_misroutes += counters.shard_misroutes;
    total.stale_replica_rejects += counters.stale_replica_rejects;
    total.bytes_loaded += counters.bytes_loaded;
    total.load_seconds += counters.load_seconds;
  }
  return total;
}

}  // namespace vira::core
