#pragma once

/// \file remote_server_api.hpp
/// Message-based DMS server access (the paper's distributed wiring).
///
/// "Each time a block has to be loaded into cache to fulfill a request,
/// first of all, a proxy asks the data manager server which strategy to
/// use. [...] The drawback is additional communication for every load
/// operation." (Sec. 4.3)
///
/// RemoteServerApi implements dms::ServerApi by sending requests to the
/// scheduler rank (0), which services them against the real DataServer
/// (Scheduler::handle_dms_request). Query ops block on a reply delivered
/// under a per-call unique tag; registry/telemetry ops are fire-and-forget
/// notifications. Calls are serialized per proxy (one mutex), mirroring
/// the one-request-at-a-time behaviour of a real MPI proxy.

#include <atomic>
#include <memory>
#include <mutex>

#include "comm/communicator.hpp"
#include "dms/data_server.hpp"
#include "dms/server_api.hpp"

namespace vira::core {

/// Rank-transport tags for DMS traffic (see protocol.hpp for the rest).
inline constexpr int kTagDmsRequest = 1100;  ///< worker → scheduler, expects a reply
inline constexpr int kTagDmsNotify = 1101;   ///< worker → scheduler, one-way
inline constexpr int kDmsReplyTagBase = 4000000;
inline constexpr int kDmsReplyTagRange = 1000000;

/// Operation codes inside DMS request/notify payloads.
enum class DmsOp : std::uint8_t {
  kIntern = 1,
  kLookup = 2,
  kChooseStrategy = 3,
  kReportInsert = 4,
  kReportEvict = 5,
  kBeginFileRead = 6,
  kEndFileRead = 7,
  kObserveBandwidth = 8,
};

class RemoteServerApi final : public dms::ServerApi {
 public:
  /// `comm` is the worker's communicator; it must outlive this object.
  explicit RemoteServerApi(std::shared_ptr<comm::Communicator> comm);

  dms::ItemId intern(const dms::DataItemName& name) override;
  std::optional<dms::DataItemName> lookup(dms::ItemId id) override;
  dms::StrategyDecision choose_strategy(int proxy, dms::ItemId id, std::uint64_t item_bytes,
                                        std::uint64_t file_bytes,
                                        const std::string& file_key) override;
  void report_insert(int proxy, dms::ItemId id) override;
  void report_evict(int proxy, dms::ItemId id) override;
  void begin_file_read(const std::string& file_key) override;
  void end_file_read(const std::string& file_key) override;
  void observe_disk_bandwidth(double bytes_per_second) override;

 private:
  /// Round-trip: sends [op][reply_tag][args] and blocks for the reply.
  util::ByteBuffer call(DmsOp op, util::ByteBuffer args);
  /// One-way: sends [op][args].
  void notify(DmsOp op, util::ByteBuffer args);

  std::shared_ptr<comm::Communicator> comm_;
  std::mutex mutex_;
  std::uint32_t next_sequence_ = 0;
};

/// Scheduler-side dispatcher: applies one DMS request/notify message to the
/// DataServer, replying through `comm` when the op demands it. Shared by
/// Scheduler so the protocol lives in one file.
void service_dms_message(dms::DataServer& server, comm::Communicator& comm,
                         comm::Message& msg, bool expects_reply);

}  // namespace vira::core
