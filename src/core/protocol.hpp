#pragma once

/// \file protocol.hpp
/// Wire protocol of the Viracocha runtime (paper Fig. 2).
///
/// Client ↔ scheduler messages travel over a comm::ClientLink (TCP/IP or
/// in-process); scheduler ↔ worker messages over the rank transport (the
/// MPI role). Tags identify message kinds; payload layouts are defined by
/// the serialize/deserialize pairs below.

#include <cstdint>
#include <map>
#include <string>

#include "util/byte_buffer.hpp"
#include "util/param_list.hpp"

namespace vira::core {

/// Client link tags (client ↔ scheduler).
enum ClientTag : int {
  kTagSubmit = 1,     ///< client → scheduler: CommandRequest
  kTagCancel = 2,     ///< client → scheduler: request_id
  kTagPartial = 10,   ///< scheduler → client: streamed fragment
  kTagFinal = 11,     ///< scheduler → client: merged final result
  kTagComplete = 12,  ///< scheduler → client: CommandStats, command finished
  kTagError = 13,     ///< scheduler → client: error text
  kTagProgress = 14,  ///< scheduler → client: fraction in [0,1]
  kTagDegraded = 15,  ///< scheduler → client: request degraded (retry count)
  kTagRejected = 16,  ///< scheduler → client: admission control refused the
                      ///< submission (request_id + reason); terminal — the
                      ///< request was never queued and no kTagComplete follows
  // Tags 17 (hello) and 18 (hello ack) belong to the link-level feature
  // negotiation and are defined next to the framing in comm/client_link.hpp
  // (comm::kTagHello / comm::kTagHelloAck): the event-loop frontend answers
  // them without scheduler involvement; on the blocking fallback the
  // scheduler answers directly (granting no features).
};

/// Rank transport tags (scheduler ↔ workers). User commands use tags >= 0
/// for intra-group traffic; runtime control tags live here.
enum WorkerTag : int {
  kTagExecute = 1000,     ///< scheduler → worker: ExecuteOrder
  kTagWorkerDone = 1001,  ///< worker → scheduler: WorkerReport
  kTagStream = 1002,      ///< worker → scheduler: fragment to forward
  kTagFinalResult = 1003, ///< master worker → scheduler: merged result
  kTagWorkerError = 1004, ///< worker → scheduler: error text
  kTagShutdown = 1005,    ///< scheduler → worker: exit the loop
  kTagProgressUp = 1006,  ///< worker → scheduler: progress fraction
  kTagHeartbeat = 1007,   ///< worker → scheduler: Heartbeat (liveness)
  kTagGroupAbort = 1008,  ///< scheduler → worker: abandon the named request
  kTagNudge = 1009,       ///< scheduler → itself: a client link turned
                          ///< readable (event-loop wakeup; empty payload).
                          ///< Pops the scheduler out of its idle poll wait
                          ///< so request pickup is event-driven.
};

/// Periodic worker → scheduler liveness beacon. Sent from a dedicated
/// thread so a worker deep inside a long command still proves it is alive;
/// `current_request` (0 = idle) lets the scheduler detect lost execute
/// orders and lost done reports, not just dead processes.
struct Heartbeat {
  std::int32_t rank = -1;
  std::uint64_t current_request = 0;  ///< internal id being executed, 0 = idle

  void serialize(util::ByteBuffer& out) const {
    out.write<std::int32_t>(rank);
    out.write<std::uint64_t>(current_request);
  }
  static Heartbeat deserialize(util::ByteBuffer& in) {
    Heartbeat beat;
    beat.rank = in.read<std::int32_t>();
    beat.current_request = in.read<std::uint64_t>();
    return beat;
  }
};

/// A client's command submission.
struct CommandRequest {
  std::uint64_t request_id = 0;
  std::string command;
  util::ParamList params;
  /// obs trace context: span id of the client's "client.request" span
  /// (0 = untraced). The scheduler parents its per-attempt span under it
  /// so the exported trace stitches client → scheduler → workers.
  std::uint64_t parent_span = 0;

  void serialize(util::ByteBuffer& out) const {
    out.write<std::uint64_t>(request_id);
    out.write_string(command);
    params.serialize(out);
    out.write<std::uint64_t>(parent_span);
  }
  static CommandRequest deserialize(util::ByteBuffer& in) {
    CommandRequest request;
    request.request_id = in.read<std::uint64_t>();
    request.command = in.read_string();
    request.params = util::ParamList::deserialize(in);
    request.parent_span = in.read<std::uint64_t>();
    return request;
  }
};

/// Scheduler → worker execution order.
struct ExecuteOrder {
  std::uint64_t request_id = 0;
  std::string command;
  util::ParamList params;
  std::vector<std::int32_t> group_ranks;  ///< all ranks of the work group
  std::int32_t master_rank = -1;          ///< collects the final result
  /// obs trace context: span id of the scheduler's "sched.request" attempt
  /// span (0 = untraced) — the worker's "worker.execute" span parents
  /// under it, so a retried attempt shows up as a second span tree.
  std::uint64_t parent_span = 0;
  /// obs trace context: the client-visible request id (request_id above is
  /// the scheduler's internal id, which changes across retries). All spans
  /// of one logical request annotate this id.
  std::uint64_t trace_request = 0;

  void serialize(util::ByteBuffer& out) const {
    out.write<std::uint64_t>(request_id);
    out.write_string(command);
    params.serialize(out);
    out.write_vector(group_ranks);
    out.write<std::int32_t>(master_rank);
    out.write<std::uint64_t>(parent_span);
    out.write<std::uint64_t>(trace_request);
  }
  static ExecuteOrder deserialize(util::ByteBuffer& in) {
    ExecuteOrder order;
    order.request_id = in.read<std::uint64_t>();
    order.command = in.read_string();
    order.params = util::ParamList::deserialize(in);
    order.group_ranks = in.read_vector<std::int32_t>();
    order.master_rank = in.read<std::int32_t>();
    order.parent_span = in.read<std::uint64_t>();
    order.trace_request = in.read<std::uint64_t>();
    return order;
  }
};

/// Worker → scheduler completion report (phase seconds for Fig. 15).
struct WorkerReport {
  std::uint64_t request_id = 0;
  std::int32_t rank = -1;
  bool success = true;
  std::string error;
  std::map<std::string, double> phase_seconds;

  void serialize(util::ByteBuffer& out) const {
    out.write<std::uint64_t>(request_id);
    out.write<std::int32_t>(rank);
    out.write<std::uint8_t>(success ? 1 : 0);
    out.write_string(error);
    out.write<std::uint32_t>(static_cast<std::uint32_t>(phase_seconds.size()));
    for (const auto& [phase, seconds] : phase_seconds) {
      out.write_string(phase);
      out.write<double>(seconds);
    }
  }
  static WorkerReport deserialize(util::ByteBuffer& in) {
    WorkerReport report;
    report.request_id = in.read<std::uint64_t>();
    report.rank = in.read<std::int32_t>();
    report.success = in.read<std::uint8_t>() != 0;
    report.error = in.read_string();
    const auto count = in.read<std::uint32_t>();
    for (std::uint32_t n = 0; n < count; ++n) {
      std::string phase = in.read_string();
      report.phase_seconds[phase] = in.read<double>();
    }
    return report;
  }
};

/// Scheduler → client summary when a command finishes. The runtime values
/// the paper reports: total runtime, latency (first streamed fragment),
/// and the compute/read/send split.
struct CommandStats {
  std::uint64_t request_id = 0;
  bool success = true;
  std::string error;
  double total_runtime = 0.0;   ///< seconds, submission → completion (server side)
  double latency = 0.0;         ///< seconds, submission → first data packet
  std::uint64_t partial_packets = 0;
  std::uint64_t result_bytes = 0;
  int workers = 0;
  /// Times the scheduler re-formed the work group after a member was lost
  /// (worker death, lost order, lost report). > 0 means the request ran
  /// degraded but the client still saw every fragment exactly once.
  std::uint32_t retries = 0;
  std::map<std::string, double> phase_seconds;  ///< summed over workers
  /// The width the client's `workers` param asked for (or the full pool for
  /// a derived width) before the scheduler clamped it to the alive pool or
  /// molded it down under multi-client pressure. workers < requested_workers
  /// means the request ran with degraded parallelism — previously that
  /// clamp was silent and indistinguishable from a full-width run.
  int requested_workers = 0;
  /// True when the scheduler answered from the result cache: the fragment
  /// stream was replayed verbatim from a memoized earlier run and no work
  /// group was formed. `workers` then reports the width of the original
  /// computation, while total_runtime/latency report the (near-zero)
  /// replay time.
  bool cache_hit = false;
  /// Dataset version the result was computed against (NameService version
  /// counter; 0 when the scheduler has no result cache attached). For a
  /// cache hit this is the version recorded with the memoized entry — the
  /// DST no-stale oracle asserts it is never older than the version
  /// current at submission.
  std::uint64_t data_version = 0;

  bool degraded() const { return retries > 0; }

  void serialize(util::ByteBuffer& out) const {
    out.write<std::uint64_t>(request_id);
    out.write<std::uint8_t>(success ? 1 : 0);
    out.write_string(error);
    out.write<double>(total_runtime);
    out.write<double>(latency);
    out.write<std::uint64_t>(partial_packets);
    out.write<std::uint64_t>(result_bytes);
    out.write<std::int32_t>(workers);
    out.write<std::uint32_t>(retries);
    out.write<std::uint32_t>(static_cast<std::uint32_t>(phase_seconds.size()));
    for (const auto& [phase, seconds] : phase_seconds) {
      out.write_string(phase);
      out.write<double>(seconds);
    }
    // Appended after the original layout (same idiom as
    // FragmentHeader::span_id) so older readers of the prefix still work.
    out.write<std::int32_t>(requested_workers);
    out.write<std::uint8_t>(cache_hit ? 1 : 0);
    out.write<std::uint64_t>(data_version);
  }
  static CommandStats deserialize(util::ByteBuffer& in) {
    CommandStats stats;
    stats.request_id = in.read<std::uint64_t>();
    stats.success = in.read<std::uint8_t>() != 0;
    stats.error = in.read_string();
    stats.total_runtime = in.read<double>();
    stats.latency = in.read<double>();
    stats.partial_packets = in.read<std::uint64_t>();
    stats.result_bytes = in.read<std::uint64_t>();
    stats.workers = in.read<std::int32_t>();
    stats.retries = in.read<std::uint32_t>();
    const auto count = in.read<std::uint32_t>();
    for (std::uint32_t n = 0; n < count; ++n) {
      std::string phase = in.read_string();
      stats.phase_seconds[phase] = in.read<double>();
    }
    stats.requested_workers = in.read<std::int32_t>();
    stats.cache_hit = in.read<std::uint8_t>() != 0;
    stats.data_version = in.read<std::uint64_t>();
    return stats;
  }
};

/// Fragment header prepended to every streamed / final payload so the
/// client can route by request. `partition` is the producing worker's rank
/// WITHIN its work group (its partition index), not its global rank: a
/// retried attempt re-forms the group from different physical ranks, but
/// partition k always recomputes the same share of the data, so
/// (request, partition, sequence) is a stable fragment identity the
/// scheduler uses to deduplicate retried deliveries.
struct FragmentHeader {
  std::uint64_t request_id = 0;
  std::int32_t partition = -1;
  std::uint32_t sequence = 0;
  /// obs trace context: span id of the producing worker's "send" phase
  /// span (0 = untraced). Lets trace tooling attribute each client-side
  /// fragment arrival to the worker-side send that produced it. The field
  /// is appended after the original triple on the wire, so the scheduler's
  /// in-place rewrite of the leading request_id word is unaffected.
  std::uint64_t span_id = 0;

  void serialize(util::ByteBuffer& out) const {
    out.write<std::uint64_t>(request_id);
    out.write<std::int32_t>(partition);
    out.write<std::uint32_t>(sequence);
    out.write<std::uint64_t>(span_id);
  }
  static FragmentHeader deserialize(util::ByteBuffer& in) {
    FragmentHeader header;
    header.request_id = in.read<std::uint64_t>();
    header.partition = in.read<std::int32_t>();
    header.sequence = in.read<std::uint32_t>();
    header.span_id = in.read<std::uint64_t>();
    return header;
  }
};

}  // namespace vira::core
