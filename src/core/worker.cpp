#include "core/worker.hpp"

#include "util/log.hpp"

namespace vira::core {

Worker::Worker(std::shared_ptr<comm::Communicator> comm, std::shared_ptr<dms::DataProxy> proxy,
               std::shared_ptr<VmbDataSource> source, const CommandRegistry* registry)
    : comm_(std::move(comm)),
      proxy_(std::move(proxy)),
      source_(std::move(source)),
      registry_(registry != nullptr ? registry : &CommandRegistry::global()) {
  if (!comm_) {
    throw std::invalid_argument("Worker: communicator required");
  }
}

void Worker::run() {
  VIRA_DEBUG("worker") << "rank " << comm_->rank() << " entering service loop";
  try {
    // Receive only control tags: anything else (e.g. a DMS reply destined
    // for the proxy's prefetch thread) stays buffered for its addressee.
    while (true) {
      if (comm_->try_recv(comm::kAnySource, kTagShutdown, std::chrono::milliseconds(0))) {
        break;
      }
      auto msg = comm_->try_recv(comm::kAnySource, kTagExecute, std::chrono::milliseconds(50));
      if (msg) {
        execute_order(ExecuteOrder::deserialize(msg->payload));
      }
    }
  } catch (const comm::TransportClosed&) {
    // Orderly teardown path.
  }
  VIRA_DEBUG("worker") << "rank " << comm_->rank() << " left service loop";
}

void Worker::execute_order(ExecuteOrder order) {
  const std::uint64_t request_id = order.request_id;
  std::uint32_t sequence = 0;

  CommandContext::Hooks hooks;
  hooks.stream_partial = [this, request_id, &sequence](util::ByteBuffer fragment) {
    util::ByteBuffer packet;
    FragmentHeader header{request_id, comm_->rank(), sequence++};
    header.serialize(packet);
    packet.write<std::uint64_t>(fragment.size());
    packet.write_raw(fragment.data(), fragment.size());
    comm_->send(0, kTagStream, std::move(packet));
  };
  hooks.send_final = [this, request_id, &sequence](util::ByteBuffer result) {
    util::ByteBuffer packet;
    FragmentHeader header{request_id, comm_->rank(), sequence++};
    header.serialize(packet);
    packet.write<std::uint64_t>(result.size());
    packet.write_raw(result.data(), result.size());
    comm_->send(0, kTagFinalResult, std::move(packet));
  };
  hooks.report_progress = [this, request_id](double fraction) {
    util::ByteBuffer packet;
    packet.write<std::uint64_t>(request_id);
    packet.write<double>(fraction);
    comm_->send(0, kTagProgressUp, std::move(packet));
  };
  hooks.dataset_meta = [this](const std::string& dir) -> const grid::DatasetMeta& {
    return source_->meta(dir);
  };

  std::vector<int> group_ranks(order.group_ranks.begin(), order.group_ranks.end());
  CommandContext context(request_id, order.params, comm_.get(), std::move(group_ranks),
                         order.master_rank, proxy_.get(), std::move(hooks));

  WorkerReport report;
  report.request_id = request_id;
  report.rank = comm_->rank();
  try {
    auto command = registry_->create(order.command);
    VIRA_DEBUG("worker") << "rank " << comm_->rank() << " executing " << order.command
                         << " (request " << request_id << ")";
    command->execute(context);
    context.phases().stop();
    report.success = true;
  } catch (const std::exception& e) {
    context.phases().stop();
    report.success = false;
    report.error = e.what();
    VIRA_ERROR("worker") << "rank " << comm_->rank() << " command " << order.command
                         << " failed: " << e.what();
  }
  report.phase_seconds = context.phases().phases();

  util::ByteBuffer payload;
  report.serialize(payload);
  comm_->send(0, kTagWorkerDone, std::move(payload));
}

}  // namespace vira::core
