#include "core/worker.hpp"

#include <algorithm>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace vira::core {

Worker::Worker(std::shared_ptr<comm::Communicator> comm, std::shared_ptr<dms::DataProxy> proxy,
               std::shared_ptr<VmbDataSource> source, const CommandRegistry* registry,
               WorkerConfig config)
    : comm_(std::move(comm)),
      proxy_(std::move(proxy)),
      source_(std::move(source)),
      registry_(registry != nullptr ? registry : &CommandRegistry::global()),
      config_(config) {
  if (!comm_) {
    throw std::invalid_argument("Worker: communicator required");
  }
}

void Worker::run() {
  VIRA_DEBUG("worker") << "rank " << comm_->rank() << " entering service loop";
  stopping_ = false;
  if (config_.pipeline_threads > 0) {
    // The pipelined block executor's pool. TaskPool announces its threads
    // through the clock seam itself; the rank-qualified name keeps the
    // participant names unique across workers in one (DST) process.
    pool_ = std::make_unique<util::TaskPool>(config_.pipeline_threads,
                                             "worker.pool." + std::to_string(comm_->rank()));
  }
  std::thread heartbeat;
  if (config_.heartbeat_interval.count() > 0) {
    // Announce-before-spawn: a cooperative clock (DST) reserves the
    // heartbeat thread's schedule slot deterministically, keyed by this
    // unique name, before the OS thread even starts.
    const std::string beacon = "worker.hb." + std::to_string(comm_->rank());
    util::global_clock().announce_thread(beacon);
    heartbeat = std::thread([this, beacon] {
      util::global_clock().thread_begin(beacon);
      heartbeat_loop();
      util::global_clock().thread_end();
    });
  }
  try {
    // Receive only control tags: anything else (e.g. a DMS reply destined
    // for the proxy's prefetch thread) stays buffered for its addressee.
    while (true) {
      if (comm_->try_recv(comm::kAnySource, kTagShutdown, std::chrono::milliseconds(0))) {
        break;
      }
      auto msg = comm_->try_recv(comm::kAnySource, kTagExecute, std::chrono::milliseconds(50));
      if (msg) {
        execute_order(ExecuteOrder::deserialize(msg->payload));
      }
    }
  } catch (const comm::TransportClosed&) {
    // Orderly teardown path.
  }
  stopping_ = true;
  if (heartbeat.joinable()) {
    util::global_clock().join_thread(heartbeat);
  }
  pool_.reset();  // cancels queued loads, joins pool threads
  VIRA_DEBUG("worker") << "rank " << comm_->rank() << " left service loop";
}

void Worker::heartbeat_loop() {
  // The beacon must keep flowing while the service thread is stuck in a
  // long compute loop or a collective — that is the whole point: liveness
  // is about the process, progress is judged by the scheduler.
  while (!stopping_) {
    try {
      Heartbeat beat;
      beat.rank = comm_->rank();
      beat.current_request = current_request_.load();
      util::ByteBuffer payload;
      beat.serialize(payload);
      comm_->send(0, kTagHeartbeat, std::move(payload));
      // Poll with a small nonzero timeout: this thread must pump the
      // transport itself, because the service thread stops pumping while it
      // is inside command compute code.
      auto abort_msg =
          comm_->try_recv(comm::kAnySource, kTagGroupAbort, std::chrono::milliseconds(1));
      if (abort_msg) {
        const auto request_id = abort_msg->payload.read<std::uint64_t>();
        abort_request_.store(request_id);
        VIRA_DEBUG("worker") << "rank " << comm_->rank() << " told to abandon request "
                             << request_id;
      }
    } catch (const comm::TransportClosed&) {
      return;
    }
    const auto interval = config_.heartbeat_interval;
    for (auto slept = std::chrono::milliseconds(0); slept < interval && !stopping_;
         slept += std::chrono::milliseconds(5)) {
      util::clock_sleep(std::chrono::milliseconds(5));
    }
  }
}

void Worker::execute_order(ExecuteOrder order) {
  const std::uint64_t request_id = order.request_id;
  std::uint32_t sequence = 0;

  // Partition index = this rank's slot in the group. It is the stable
  // fragment identity across retries: a re-formed group maps partition k to
  // the same share of the data even when a different physical rank runs it.
  const auto slot = std::find(order.group_ranks.begin(), order.group_ranks.end(),
                              static_cast<std::int32_t>(comm_->rank()));
  const std::int32_t partition =
      slot != order.group_ranks.end()
          ? static_cast<std::int32_t>(std::distance(order.group_ranks.begin(), slot))
          : -1;

  current_request_.store(request_id);

  // Trace context: the span annotates the client-visible request id
  // (trace_request) and parents under the scheduler's attempt span; the
  // ContextScope makes every span opened on this thread during execution
  // (phase mirrors, DMS loads, transport sends) stitch beneath it.
  auto exec_span = obs::Tracer::instance().start("worker.execute", order.trace_request,
                                                 comm_->rank(), order.parent_span);
  if (exec_span.active()) {
    exec_span.arg("partition", partition);
    exec_span.arg("internal_request", static_cast<std::int64_t>(request_id));
  }
  obs::ContextScope trace_scope(exec_span.context());

  CommandContext::Hooks hooks;
  hooks.stream_partial = [this, request_id, partition, &sequence](util::ByteBuffer fragment) {
    util::ByteBuffer packet;
    FragmentHeader header{request_id, partition, sequence++};
    header.span_id = obs::current_context().span_id;
    header.serialize(packet);
    packet.write<std::uint64_t>(fragment.size());
    packet.write_raw(fragment.data(), fragment.size());
    comm_->send(0, kTagStream, std::move(packet));
  };
  hooks.send_final = [this, request_id, partition, &sequence](util::ByteBuffer result) {
    util::ByteBuffer packet;
    FragmentHeader header{request_id, partition, sequence++};
    header.span_id = obs::current_context().span_id;
    header.serialize(packet);
    packet.write<std::uint64_t>(result.size());
    packet.write_raw(result.data(), result.size());
    comm_->send(0, kTagFinalResult, std::move(packet));
  };
  hooks.report_progress = [this, request_id](double fraction) {
    util::ByteBuffer packet;
    packet.write<std::uint64_t>(request_id);
    packet.write<double>(fraction);
    comm_->send(0, kTagProgressUp, std::move(packet));
  };
  hooks.dataset_meta = [this](const std::string& dir) -> const grid::DatasetMeta& {
    return source_->meta(dir);
  };
  hooks.should_abort = [this, request_id] { return abort_request_.load() == request_id; };

  std::vector<int> group_ranks(order.group_ranks.begin(), order.group_ranks.end());
  CommandContext context(request_id, order.params, comm_.get(), std::move(group_ranks),
                         order.master_rank, proxy_.get(), std::move(hooks), pool_.get());

  // Mirror PhaseTimer transitions into obs spans ("compute"/"read"/"send"
  // children of worker.execute) — commands keep their PhaseTimer API, the
  // trace gets the per-phase intervals for free.
  auto phase_span = std::make_shared<obs::ActiveSpan>();
  context.phases().set_listener(
      [phase_span](const std::string& /*previous*/, const std::string& next) {
        phase_span->end();
        if (!next.empty()) {
          *phase_span = obs::Tracer::instance().start_child(next);
        }
      });

  WorkerReport report;
  report.request_id = request_id;
  report.rank = comm_->rank();
  try {
    auto command = registry_->create(order.command);
    VIRA_DEBUG("worker") << "rank " << comm_->rank() << " executing " << order.command
                         << " (request " << request_id << ")";
    command->execute(context);
    context.phases().stop();
    report.success = true;
  } catch (const CommandAborted& e) {
    context.phases().stop();
    report.success = false;
    report.error = e.what();
    VIRA_DEBUG("worker") << "rank " << comm_->rank() << " abandoned " << order.command
                         << " (request " << request_id << ")";
  } catch (const std::exception& e) {
    context.phases().stop();
    report.success = false;
    report.error = e.what();
    VIRA_ERROR("worker") << "rank " << comm_->rank() << " command " << order.command
                         << " failed: " << e.what();
  }
  report.phase_seconds = context.phases().phases();
  current_request_.store(0);
  phase_span->end();
  if (exec_span.active()) {
    exec_span.arg("success", report.success ? 1 : 0);
  }
  exec_span.end();

  static obs::Counter& commands_counter = obs::Registry::instance().counter("worker.commands");
  commands_counter.add();

  util::ByteBuffer payload;
  report.serialize(payload);
  comm_->send(0, kTagWorkerDone, std::move(payload));
}

}  // namespace vira::core
