#pragma once

/// \file scheduler.hpp
/// The Viracocha scheduler (paper Sec. 3, Fig. 2).
///
/// "Whenever the user requires a new CFD feature, a command is sent from
/// ViSTA FlowLib to the scheduler of Viracocha. As soon as enough processes
/// (called workers) are available, they form a work group and a new
/// parallel post-processing task is started."
///
/// Single thread, two inputs: the client link (submissions, cancels) and
/// the rank transport (worker traffic). It forms work groups, forwards
/// streamed fragments to the client as they arrive, measures per-request
/// total runtime and latency on the server side (exactly where the paper
/// measured), and frees workers when every group member reported done.
///
/// Failure model (DESIGN.md "Failure model"): workers heartbeat; the
/// scheduler tracks last-seen per rank and declares a worker dead after
/// `death_timeout`. Losing a group member does not fail the request —
/// the scheduler aborts the surviving members, re-forms the work group at
/// the same width and re-dispatches with bounded retries and exponential
/// backoff. Fragments already forwarded to the client are deduplicated by
/// (partition, sequence), so retried delivery stays exactly-once.

#include <atomic>
#include <cstring>
#include <deque>
#include <utility>
#include <vector>
#include <map>
#include <memory>
#include <set>

#include "comm/client_link.hpp"
#include "comm/communicator.hpp"
#include "dms/data_server.hpp"
#include "core/protocol.hpp"
#include "obs/tracer.hpp"
#include "util/timer.hpp"

namespace vira::core {

/// Liveness / recovery policy knobs.
struct SchedulerConfig {
  /// Master switch; false restores the seed's fail-stop behavior exactly.
  bool liveness = true;
  /// No message (heartbeat or otherwise) from a rank for this long →
  /// the rank is declared dead and permanently removed from the pool.
  std::chrono::milliseconds death_timeout{2000};
  /// A member whose heartbeats — arriving this long after dispatch — name a
  /// different request has lost its execute order (or its done report was
  /// lost); the group is re-formed. Also the grace before believing such a
  /// mismatch.
  std::chrono::milliseconds idle_grace{500};
  /// Work-group re-formations per request before giving up.
  int max_retries = 2;
  /// Backoff before re-dispatch: retry_backoff * 2^attempt.
  std::chrono::milliseconds retry_backoff{10};
  /// Whole-attempt watchdog (0 = disabled): an attempt older than this is
  /// aborted and retried even if every member still looks alive — the
  /// safety net for lossy transports that silently swallow group-internal
  /// collective traffic.
  std::chrono::milliseconds request_timeout{0};
  /// Exactly-once fragment forwarding (dedup by (partition, sequence)).
  /// Diagnostic switch: the DST harness disables it to prove its
  /// exactly-once oracle catches the resulting duplicate deliveries.
  bool fragment_dedup = true;
};

class Scheduler {
 public:
  Scheduler(std::shared_ptr<comm::Transport> transport, int worker_count,
            SchedulerConfig config = SchedulerConfig{});

  /// Attaches an additional client connection (multiple visualization
  /// hosts may be served concurrently; results are routed back to the
  /// client that submitted the request). Thread-safe.
  void attach_client(std::shared_ptr<comm::ClientLink> link);

  /// Number of live client connections (closed links are pruned lazily).
  std::size_t client_count() const;

  /// Enables servicing of message-based DMS traffic (RemoteServerApi):
  /// the scheduler answers strategy/naming requests against this server.
  void set_data_server(std::shared_ptr<dms::DataServer> server) {
    data_server_ = std::move(server);
  }

  /// Blocks servicing requests until stop(). Sends kTagShutdown to all
  /// workers on the way out.
  void run();
  void stop();

  /// Diagnostics.
  std::size_t free_workers() const;
  std::size_t queued_requests() const;
  /// Ranks declared dead so far (they never return to the pool).
  std::size_t lost_workers() const { return lost_workers_.load(); }
  /// Work-group re-formations performed so far (all requests).
  std::uint64_t total_retries() const { return total_retries_.load(); }
  /// Work groups currently in flight. Like free_workers(), callers must
  /// provide external quiescence (the DST harness reads it while holding
  /// the serialization token of the virtual clock).
  std::size_t active_groups() const { return groups_.size(); }

 private:
  /// Time points are steady_clock-typed but every read goes through the
  /// injectable util clock (virtual under DST, real otherwise).
  using Clock = std::chrono::steady_clock;

  /// A queued request plus everything a retry must carry across attempts.
  struct PendingRequest {
    CommandRequest request;
    std::size_t client = 0;
    int attempt = 0;  ///< 0 = first dispatch
    int width = 0;    ///< fixed after the first dispatch (0 = derive)
    Clock::time_point not_before{};  ///< backoff gate
    double elapsed_before = 0.0;     ///< seconds burned by earlier attempts
    double first_packet_seconds = -1.0;
    std::uint64_t partial_packets = 0;
    std::uint64_t result_bytes = 0;
    std::map<std::string, double> phase_seconds;
    std::set<std::uint64_t> seen_fragments;  ///< fragment ids already forwarded
  };

  struct Group {
    CommandRequest request;
    std::size_t client = 0;  ///< index of the submitting client
    std::vector<int> ranks;
    int master = -1;
    int width = 0;
    int pending = 0;  ///< workers that have not reported done yet
    int attempt = 0;
    bool failed = false;
    std::string error;
    bool cancelled = false;
    util::WallTimer timer;          ///< this attempt only
    Clock::time_point dispatched_at{};
    double elapsed_before = 0.0;    ///< earlier attempts
    double first_packet_seconds = -1.0;
    std::uint64_t partial_packets = 0;
    std::uint64_t result_bytes = 0;
    std::map<std::string, double> phase_seconds;
    std::set<int> done_ranks;
    std::set<std::uint64_t> seen_fragments;
    /// Per-attempt "sched.request" trace span (parented under the client's
    /// span; a retried request opens a fresh one, so recovery is visible
    /// as a second span tree). Ends when the Group is destroyed.
    obs::ActiveSpan span;

    double total_seconds() const { return elapsed_before + timer.seconds(); }
  };

  void poll_clients();
  void poll_workers();
  void dispatch_pending();
  void check_liveness();
  void recover_group(std::uint64_t internal_id, const std::string& reason);
  void fail_pending(PendingRequest& entry, const std::string& reason);
  void start_group(PendingRequest entry);
  void finish_group(std::uint64_t request_id);
  void send_to_client(std::size_t client, int tag, util::ByteBuffer payload);

  void handle_stream(comm::Message& msg, bool final);
  void handle_done(comm::Message& msg);
  void handle_error(comm::Message& msg);
  void handle_progress(comm::Message& msg);
  void handle_heartbeat(comm::Message& msg);

  comm::Communicator comm_;
  int worker_count_;
  SchedulerConfig config_;
  std::atomic<bool> running_{false};
  std::shared_ptr<dms::DataServer> data_server_;

  mutable std::mutex client_mutex_;
  std::vector<std::shared_ptr<comm::ClientLink>> clients_;

  std::set<int> free_;  // free worker ranks
  std::deque<PendingRequest> pending_;
  /// Keyed by scheduler-internal request id (client ids may collide; each
  /// retry attempt gets a fresh internal id so stragglers of an abandoned
  /// attempt can never corrupt its successor).
  std::map<std::uint64_t, Group> groups_;
  /// (client index, client request id) -> internal id, for cancels.
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t> by_client_;
  std::uint64_t next_internal_id_ = 1;

  /// --- liveness bookkeeping ------------------------------------------------
  std::map<int, Clock::time_point> last_seen_;       ///< any message
  std::map<int, Clock::time_point> last_heartbeat_;  ///< heartbeats only
  std::map<int, std::uint64_t> reported_request_;    ///< from heartbeats
  /// Last time a stale-execution abort was re-sent per rank (see
  /// check_liveness: a dropped kTagGroupAbort must be retried or the rank
  /// leaks, stuck executing an abandoned attempt forever).
  std::map<int, Clock::time_point> last_stale_abort_;
  std::set<int> dead_;
  std::atomic<std::size_t> lost_workers_{0};
  std::atomic<std::uint64_t> total_retries_{0};
};

}  // namespace vira::core
