#pragma once

/// \file scheduler.hpp
/// The Viracocha scheduler (paper Sec. 3, Fig. 2).
///
/// "Whenever the user requires a new CFD feature, a command is sent from
/// ViSTA FlowLib to the scheduler of Viracocha. As soon as enough processes
/// (called workers) are available, they form a work group and a new
/// parallel post-processing task is started."
///
/// Single thread, two inputs: the client link (submissions, cancels) and
/// the rank transport (worker traffic). It forms work groups, forwards
/// streamed fragments to the client as they arrive, measures per-request
/// total runtime and latency on the server side (exactly where the paper
/// measured), and frees workers when every group member reported done.
///
/// Queueing model (DESIGN.md "Scheduling & QoS"): dispatch follows a
/// configurable discipline. The default, SchedPolicy::kFairShare, keeps
/// per-client FIFO order but molds derived group widths so concurrent
/// clients share the pool, backfills narrow requests past a blocked wide
/// head (bounded by an aging counter so the head cannot starve), rejects
/// submissions beyond a per-client queue bound, and reaps work whose
/// client link has closed. SchedPolicy::kFifo restores the seed's strict
/// single-queue arrival order.
///
/// Failure model (DESIGN.md "Failure model"): workers heartbeat; the
/// scheduler tracks last-seen per rank and declares a worker dead after
/// `death_timeout`. Losing a group member does not fail the request —
/// the scheduler aborts the surviving members, re-forms the work group at
/// the same width and re-dispatches with bounded retries and exponential
/// backoff. Fragments already forwarded to the client are deduplicated by
/// (partition, sequence), so retried delivery stays exactly-once.

#include <atomic>
#include <cstring>
#include <deque>
#include <utility>
#include <vector>
#include <map>
#include <memory>
#include <set>

#include "comm/client_link.hpp"
#include "comm/communicator.hpp"
#include "dms/data_server.hpp"
#include "core/protocol.hpp"
#include "core/result_cache.hpp"
#include "obs/tracer.hpp"
#include "util/timer.hpp"

namespace vira::core {

/// Queue discipline for dispatch_pending().
enum class SchedPolicy {
  /// Strict arrival order, one global queue: the seed behavior. A wide
  /// blocked head serializes every client behind it.
  kFifo,
  /// Per-client FIFO with cross-client backfilling: each client's oldest
  /// queued request competes for free workers; derived widths are molded
  /// down so K active clients share the pool; a bypassed head ages (see
  /// SchedulerConfig::max_head_bypass) and eventually dispatches.
  kFairShare,
};

/// Liveness / recovery / QoS policy knobs.
struct SchedulerConfig {
  /// Master switch; false restores the seed's fail-stop behavior exactly.
  bool liveness = true;
  /// No message (heartbeat or otherwise) from a rank for this long →
  /// the rank is declared dead and permanently removed from the pool.
  std::chrono::milliseconds death_timeout{2000};
  /// A member whose heartbeats — arriving this long after dispatch — name a
  /// different request has lost its execute order (or its done report was
  /// lost); the group is re-formed. Also the grace before believing such a
  /// mismatch.
  std::chrono::milliseconds idle_grace{500};
  /// Work-group re-formations per request before giving up.
  int max_retries = 2;
  /// Backoff before re-dispatch: retry_backoff * 2^attempt.
  std::chrono::milliseconds retry_backoff{10};
  /// Whole-attempt watchdog (0 = disabled): an attempt older than this is
  /// aborted and retried even if every member still looks alive — the
  /// safety net for lossy transports that silently swallow group-internal
  /// collective traffic.
  std::chrono::milliseconds request_timeout{0};
  /// Exactly-once fragment forwarding (dedup by (partition, sequence)).
  /// Diagnostic switch: the DST harness disables it to prove its
  /// exactly-once oracle catches the resulting duplicate deliveries.
  bool fragment_dedup = true;
  /// Longest the scheduler loop sleeps when idle (the poll slice for both
  /// client links and worker traffic). With the event-loop frontend wired
  /// (nudge() on link readability) this is only the fallback cadence, so
  /// it can be raised without hurting request pickup latency; with tick
  /// polling alone it bounds pickup latency directly.
  std::chrono::milliseconds idle_poll{2};

  /// --- QoS (DESIGN.md "Scheduling & QoS") --------------------------------
  /// Queue discipline. kFairShare is single-client-identical to kFifo (one
  /// client's own requests never reorder and mold to the full pool), so the
  /// seed behavior is preserved unless several clients contend.
  SchedPolicy policy = SchedPolicy::kFairShare;
  /// Aging bound: how many times a ready queue head may be bypassed by
  /// backfilled requests before backfilling pauses and the head gets strict
  /// priority for the next free workers. Bounds starvation under a
  /// permanent stream of narrow requests.
  int max_head_bypass = 8;
  /// Admission control: queued (not yet dispatched) requests allowed per
  /// client; a submission beyond the bound is answered with kTagRejected
  /// instead of growing pending_ without limit. 0 = unbounded.
  std::size_t max_queue_per_client = 64;

  /// --- Result memoization (DESIGN.md "Result memoization") ----------------
  /// Content-addressed result cache consulted before forming a work group;
  /// disabled by default (see ResultCacheConfig::enabled).
  ResultCacheConfig result_cache;
};

class Scheduler {
 public:
  Scheduler(std::shared_ptr<comm::Transport> transport, int worker_count,
            SchedulerConfig config = SchedulerConfig{});

  /// Attaches an additional client connection (multiple visualization
  /// hosts may be served concurrently; results are routed back to the
  /// client that submitted the request). Thread-safe.
  void attach_client(std::shared_ptr<comm::ClientLink> link);

  /// Number of live client connections (closed links are pruned lazily).
  std::size_t client_count() const;

  /// Enables servicing of message-based DMS traffic (RemoteServerApi):
  /// the scheduler answers strategy/naming requests against this server.
  void set_data_server(std::shared_ptr<dms::DataServer> server) {
    data_server_ = std::move(server);
  }

  /// Blocks servicing requests until stop(). Sends kTagShutdown to all
  /// workers on the way out.
  void run();
  void stop();

  /// Wakes the scheduler loop out of its idle poll wait: a client link
  /// turned readable (or closed), so poll_clients should run now instead
  /// of after the poll slice. Thread-safe and cheap to call repeatedly —
  /// at most one nudge message is in flight at a time (the event loop's
  /// readability callback fires per batch of inbound frames). Request
  /// pickup latency thus tracks message arrival, not the tick cadence.
  void nudge();

  /// Diagnostics. free_workers / queued_requests / active_groups read
  /// atomic mirrors the scheduler loop refreshes once per tick, so any
  /// thread may poll them (they lag the private containers by <= 1 tick).
  std::size_t free_workers() const;
  std::size_t queued_requests() const;
  /// Ranks declared dead so far (they never return to the pool).
  std::size_t lost_workers() const { return lost_workers_.load(); }
  /// Work-group re-formations performed so far (all requests).
  std::uint64_t total_retries() const { return total_retries_.load(); }
  /// Work groups currently in flight.
  std::size_t active_groups() const { return group_count_.load(std::memory_order_relaxed); }
  /// Backfills performed: dispatches of a non-head request while the head
  /// was ready but blocked on width (kFairShare only).
  std::uint64_t total_backfills() const { return total_backfills_.load(); }
  /// Submissions refused by admission control (kTagRejected sent).
  std::uint64_t total_rejected() const { return total_rejected_.load(); }
  /// Queued entries and in-flight groups abandoned because their client
  /// link closed before they ran / finished.
  std::uint64_t total_reaped() const { return total_reaped_.load(); }
  /// Highest bypass count any queue head accumulated — the DST
  /// no-starvation oracle asserts this never exceeds max_head_bypass.
  int max_head_bypass_observed() const { return max_bypass_observed_.load(); }
  /// Requests served from the result cache (no work group formed).
  std::uint64_t total_cache_hits() const { return cache_hits_.load(); }

 private:
  /// Time points are steady_clock-typed but every read goes through the
  /// injectable util clock (virtual under DST, real otherwise).
  using Clock = std::chrono::steady_clock;

  /// A queued request plus everything a retry must carry across attempts.
  struct PendingRequest {
    CommandRequest request;
    std::size_t client = 0;
    int attempt = 0;  ///< 0 = first dispatch
    int width = 0;    ///< fixed after the first dispatch (0 = derive)
    /// Width the client asked for before clamping/molding (recorded at the
    /// first dispatch; pinned across retries like width).
    int requested_workers = 0;
    /// Times a ready head was bypassed by a backfilled dispatch; compared
    /// against max_head_bypass to age the head into strict priority.
    int bypassed = 0;
    Clock::time_point enqueued_at{};  ///< for queue-wait metrics
    Clock::time_point not_before{};   ///< backoff gate
    double elapsed_before = 0.0;      ///< seconds burned by earlier attempts
    double first_packet_seconds = -1.0;
    std::uint64_t partial_packets = 0;
    std::uint64_t result_bytes = 0;
    std::map<std::string, double> phase_seconds;
    std::set<std::uint64_t> seen_fragments;  ///< fragment ids already forwarded
    /// Result-cache bookkeeping: an attempt-0 entry is keyed and looked up
    /// once (serve_cache_hits); a miss carries the key into the group so
    /// the finished stream can be admitted under the same key.
    bool cache_checked = false;
    std::string cache_key;
    std::uint64_t cache_version = 0;
    /// "sched.queue" span covering enqueue → dispatch/terminal, parented
    /// under the client's request span so queue wait shows up in traces.
    obs::ActiveSpan queue_span;
  };

  struct Group {
    CommandRequest request;
    std::size_t client = 0;  ///< index of the submitting client
    std::vector<int> ranks;
    int master = -1;
    int width = 0;
    int requested_workers = 0;  ///< pre-clamp/pre-mold width (see CommandStats)
    int pending = 0;  ///< workers that have not reported done yet
    int attempt = 0;
    bool failed = false;
    std::string error;
    bool cancelled = false;
    bool reaped = false;  ///< cancelled because the client link closed
    util::WallTimer timer;          ///< this attempt only
    Clock::time_point dispatched_at{};
    double elapsed_before = 0.0;    ///< earlier attempts
    double first_packet_seconds = -1.0;
    std::uint64_t partial_packets = 0;
    std::uint64_t result_bytes = 0;
    std::map<std::string, double> phase_seconds;
    std::set<int> done_ranks;
    std::set<std::uint64_t> seen_fragments;
    /// Result-cache capture: every deduplicated fragment forwarded to the
    /// client is copied here (first attempt only); finish_group admits the
    /// sequence under cache_key if the stream ended fully successful.
    bool capture = false;
    std::uint64_t capture_bytes = 0;
    std::vector<CachedResult::Fragment> captured;
    std::string cache_key;
    std::uint64_t cache_version = 0;
    /// Per-attempt "sched.request" trace span (parented under the client's
    /// span; a retried request opens a fresh one, so recovery is visible
    /// as a second span tree). Ends when the Group is destroyed.
    obs::ActiveSpan span;

    double total_seconds() const { return elapsed_before + timer.seconds(); }
  };

  void poll_clients();
  void poll_workers();
  void dispatch_pending();
  void dispatch_fifo();
  void dispatch_fair_share();
  void reap_closed_clients();
  bool client_link_closed(std::size_t client) const;
  /// Width the entry asks for before clamping: the `workers` param if set,
  /// else the whole alive pool (the seed's derived default).
  int requested_width(const PendingRequest& entry, int alive) const;
  void note_dispatch(PendingRequest& entry);
  /// Current NameService dataset version (1 when no data server attached).
  std::uint64_t current_data_version() const;
  /// Keys unchecked attempt-0 entries against the result cache and serves
  /// hits by replaying the recorded fragment sequence — no work group is
  /// formed. Runs at the top of dispatch_pending().
  void serve_cache_hits();
  void replay_cached(PendingRequest& entry, const CachedResult& hit);
  void check_liveness();
  void recover_group(std::uint64_t internal_id, const std::string& reason);
  void fail_pending(PendingRequest& entry, const std::string& reason);
  void start_group(PendingRequest entry);
  void finish_group(std::uint64_t request_id);
  /// `trace_request`/`trace_span` annotate the message so a deferred-write
  /// link (the event-loop frontend) can open a "net.send" span under the
  /// caller's span covering queue + socket time. 0 = untraced send.
  void send_to_client(std::size_t client, int tag, util::ByteBuffer payload,
                      std::uint64_t trace_request = 0, std::uint64_t trace_span = 0);

  void handle_stream(comm::Message& msg, bool final);
  void handle_done(comm::Message& msg);
  void handle_error(comm::Message& msg);
  void handle_progress(comm::Message& msg);
  void handle_heartbeat(comm::Message& msg);

  comm::Communicator comm_;
  int worker_count_;
  SchedulerConfig config_;
  std::atomic<bool> running_{false};
  std::shared_ptr<dms::DataServer> data_server_;

  /// Result memoization (nullptr when config_.result_cache.enabled is
  /// false). Scheduler-thread-only access.
  std::unique_ptr<ResultCache> result_cache_;
  /// Last dataset version observed; a change eagerly purges the cache
  /// (entries are unreachable anyway — the version is part of the key).
  std::uint64_t last_data_version_ = 0;
  std::atomic<std::uint64_t> cache_hits_{0};

  mutable std::mutex client_mutex_;
  std::vector<std::shared_ptr<comm::ClientLink>> clients_;

  std::set<int> free_;  // free worker ranks
  std::deque<PendingRequest> pending_;
  /// Keyed by scheduler-internal request id (client ids may collide; each
  /// retry attempt gets a fresh internal id so stragglers of an abandoned
  /// attempt can never corrupt its successor).
  std::map<std::uint64_t, Group> groups_;
  /// (client index, client request id) -> internal id, for cancels.
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t> by_client_;
  std::uint64_t next_internal_id_ = 1;

  /// --- liveness bookkeeping ------------------------------------------------
  std::map<int, Clock::time_point> last_seen_;       ///< any message
  std::map<int, Clock::time_point> last_heartbeat_;  ///< heartbeats only
  std::map<int, std::uint64_t> reported_request_;    ///< from heartbeats
  /// Last time a stale-execution abort was re-sent per rank (see
  /// check_liveness: a dropped kTagGroupAbort must be retried or the rank
  /// leaks, stuck executing an abandoned attempt forever).
  std::map<int, Clock::time_point> last_stale_abort_;
  std::set<int> dead_;
  std::atomic<std::size_t> lost_workers_{0};
  std::atomic<std::uint64_t> total_retries_{0};

  /// Nudge dedup: true while a kTagNudge message is in flight so repeated
  /// readability callbacks collapse into one wakeup. Cleared by the
  /// scheduler loop when the nudge is consumed.
  std::atomic<bool> nudge_pending_{false};

  /// Race-free mirrors of free_ / pending_ / groups_ sizes for the public
  /// diagnostics (refreshed once per scheduler-loop tick).
  std::atomic<std::size_t> free_count_{0};
  std::atomic<std::size_t> pending_count_{0};
  std::atomic<std::size_t> group_count_{0};

  /// --- QoS bookkeeping -----------------------------------------------------
  /// Width-weighted service received per client (deficit-round-robin):
  /// backfilling picks the dispatchable candidate of the least-served
  /// client. Entries are pruned when a client goes idle and re-join at the
  /// least-served active level, so history never starves a newcomer's peers.
  std::map<std::size_t, std::uint64_t> client_service_;
  std::atomic<std::uint64_t> total_backfills_{0};
  std::atomic<std::uint64_t> total_rejected_{0};
  std::atomic<std::uint64_t> total_reaped_{0};
  std::atomic<int> max_bypass_observed_{0};
};

}  // namespace vira::core
