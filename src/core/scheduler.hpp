#pragma once

/// \file scheduler.hpp
/// The Viracocha scheduler (paper Sec. 3, Fig. 2).
///
/// "Whenever the user requires a new CFD feature, a command is sent from
/// ViSTA FlowLib to the scheduler of Viracocha. As soon as enough processes
/// (called workers) are available, they form a work group and a new
/// parallel post-processing task is started."
///
/// Single thread, two inputs: the client link (submissions, cancels) and
/// the rank transport (worker traffic). It forms work groups, forwards
/// streamed fragments to the client as they arrive, measures per-request
/// total runtime and latency on the server side (exactly where the paper
/// measured), and frees workers when every group member reported done.

#include <atomic>
#include <cstring>
#include <deque>
#include <utility>
#include <vector>
#include <map>
#include <memory>
#include <set>

#include "comm/client_link.hpp"
#include "comm/communicator.hpp"
#include "dms/data_server.hpp"
#include "core/protocol.hpp"
#include "util/timer.hpp"

namespace vira::core {

class Scheduler {
 public:
  Scheduler(std::shared_ptr<comm::Transport> transport, int worker_count);

  /// Attaches an additional client connection (multiple visualization
  /// hosts may be served concurrently; results are routed back to the
  /// client that submitted the request). Thread-safe.
  void attach_client(std::shared_ptr<comm::ClientLink> link);

  /// Number of live client connections (closed links are pruned lazily).
  std::size_t client_count() const;

  /// Enables servicing of message-based DMS traffic (RemoteServerApi):
  /// the scheduler answers strategy/naming requests against this server.
  void set_data_server(std::shared_ptr<dms::DataServer> server) {
    data_server_ = std::move(server);
  }

  /// Blocks servicing requests until stop(). Sends kTagShutdown to all
  /// workers on the way out.
  void run();
  void stop();

  /// Diagnostics.
  std::size_t free_workers() const;
  std::size_t queued_requests() const;

 private:
  struct Group {
    CommandRequest request;
    std::size_t client = 0;  ///< index of the submitting client
    std::vector<int> ranks;
    int master = -1;
    int pending = 0;  ///< workers that have not reported done yet
    bool failed = false;
    std::string error;
    bool cancelled = false;
    util::WallTimer timer;
    double first_packet_seconds = -1.0;
    std::uint64_t partial_packets = 0;
    std::uint64_t result_bytes = 0;
    std::map<std::string, double> phase_seconds;
  };

  void poll_clients();
  void poll_workers();
  void dispatch_pending();
  void start_group(CommandRequest request, std::size_t client);
  void finish_group(std::uint64_t request_id);
  void send_to_client(std::size_t client, int tag, util::ByteBuffer payload);

  void handle_stream(comm::Message& msg, bool final);
  void handle_done(comm::Message& msg);
  void handle_error(comm::Message& msg);
  void handle_progress(comm::Message& msg);

  comm::Communicator comm_;
  int worker_count_;
  std::atomic<bool> running_{false};
  std::shared_ptr<dms::DataServer> data_server_;

  mutable std::mutex client_mutex_;
  std::vector<std::shared_ptr<comm::ClientLink>> clients_;

  std::set<int> free_;  // free worker ranks
  /// (request, submitting client index)
  std::deque<std::pair<CommandRequest, std::size_t>> pending_;
  /// Keyed by scheduler-internal request id (client ids may collide).
  std::map<std::uint64_t, Group> groups_;
  /// (client index, client request id) -> internal id, for cancels.
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t> by_client_;
  std::uint64_t next_internal_id_ = 1;
};

}  // namespace vira::core
