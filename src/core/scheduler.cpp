#include "core/scheduler.hpp"

#include <algorithm>

#include "util/clock.hpp"

#include "core/remote_server_api.hpp"

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace vira::core {

namespace {
/// Scheduler instruments (resolved once; see obs::Registry contract).
struct SchedulerMetrics {
  obs::Counter& requests = obs::Registry::instance().counter("sched.requests");
  obs::Counter& retries = obs::Registry::instance().counter("sched.retries");
  obs::Counter& degraded = obs::Registry::instance().counter("sched.degraded");
  obs::Counter& failed = obs::Registry::instance().counter("sched.failed");
  obs::Counter& lost_workers = obs::Registry::instance().counter("sched.lost_workers");
  obs::Counter& fragments = obs::Registry::instance().counter("sched.fragments_forwarded");
  obs::Counter& backfills = obs::Registry::instance().counter("sched.backfills");
  obs::Counter& rejected = obs::Registry::instance().counter("sched.rejected");
  obs::Counter& reaped = obs::Registry::instance().counter("sched.reaped");
  obs::Counter& molded = obs::Registry::instance().counter("sched.molded");
  obs::Gauge& queue_depth = obs::Registry::instance().gauge("sched.queue_depth");
  obs::Histogram& runtime = obs::Registry::instance().histogram("sched.request_seconds");
  obs::Histogram& latency = obs::Registry::instance().histogram("sched.latency_seconds");
  obs::Histogram& wait = obs::Registry::instance().histogram("sched.wait_seconds");
};

SchedulerMetrics& metrics() {
  static SchedulerMetrics* instruments = new SchedulerMetrics();
  return *instruments;
}

/// Per-client queue-wait gauge (latest wait in ms). Client count is small
/// and bounded by attach_client calls, so the registry lookup per dispatch
/// is cheap and the instrument set stays finite.
obs::Gauge& client_wait_gauge(std::size_t client) {
  return obs::Registry::instance().gauge("sched.client." + std::to_string(client) +
                                         ".wait_ms");
}

/// Stable fragment identity within one logical request: partition index in
/// the high half, per-partition sequence in the low half. Partition indices
/// survive work-group re-formation (see FragmentHeader), so this key makes
/// retried deliveries — and transport-level duplicates — idempotent.
std::uint64_t fragment_key(const FragmentHeader& header) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(header.partition)) << 32) |
         header.sequence;
}
}  // namespace

Scheduler::Scheduler(std::shared_ptr<comm::Transport> transport, int worker_count,
                     SchedulerConfig config)
    : comm_(std::move(transport), 0), worker_count_(worker_count), config_(config) {
  if (config_.result_cache.enabled) {
    result_cache_ = std::make_unique<ResultCache>(config_.result_cache);
  }
  const auto now = util::clock_now();
  for (int rank = 1; rank <= worker_count_; ++rank) {
    free_.insert(rank);
    last_seen_[rank] = now;
  }
  free_count_.store(free_.size(), std::memory_order_relaxed);
}

void Scheduler::attach_client(std::shared_ptr<comm::ClientLink> link) {
  std::lock_guard<std::mutex> lock(client_mutex_);
  clients_.push_back(std::move(link));
}

std::size_t Scheduler::client_count() const {
  std::lock_guard<std::mutex> lock(client_mutex_);
  std::size_t live = 0;
  for (const auto& client : clients_) {
    if (client && !client->closed()) {
      ++live;
    }
  }
  return live;
}

void Scheduler::send_to_client(std::size_t client, int tag, util::ByteBuffer payload,
                               std::uint64_t trace_request, std::uint64_t trace_span) {
  std::shared_ptr<comm::ClientLink> link;
  {
    std::lock_guard<std::mutex> lock(client_mutex_);
    if (client < clients_.size()) {
      link = clients_[client];
    }
  }
  if (link && !link->closed()) {
    comm::Message msg;
    msg.source = 0;
    msg.tag = tag;
    msg.payload = std::move(payload);
    msg.trace_request = trace_request;
    msg.trace_span = trace_span;
    link->send(std::move(msg));
  }
}

void Scheduler::nudge() {
  // Collapse bursts: one kTagNudge in flight at a time. The flag is cleared
  // by poll_workers when the message is consumed. On a fault-injecting
  // transport the nudge may be dropped with the flag left set — then pickup
  // degrades to the idle_poll cadence until the next consumed nudge, which
  // is the pre-nudge behavior, not a hang.
  if (!nudge_pending_.exchange(true, std::memory_order_acq_rel)) {
    comm_.send(0, kTagNudge, {});
  }
}

void Scheduler::run() {
  running_ = true;
  {
    // Workers have had no chance to speak yet; restart the death clocks so
    // construction-to-run delay cannot count against them.
    const auto now = util::clock_now();
    for (int rank = 1; rank <= worker_count_; ++rank) {
      last_seen_[rank] = now;
    }
  }
  VIRA_INFO("scheduler") << "serving " << worker_count_ << " workers";
  while (running_) {
    poll_clients();
    poll_workers();
    check_liveness();
    dispatch_pending();
    // Refresh the race-free diagnostic mirrors once per tick; the private
    // containers themselves are scheduler-thread-only.
    free_count_.store(free_.size(), std::memory_order_relaxed);
    pending_count_.store(pending_.size(), std::memory_order_relaxed);
    group_count_.store(groups_.size(), std::memory_order_relaxed);
  }
  // Orderly worker shutdown (dead ranks included: the message is cheap and
  // a wrongly-declared-dead worker still deserves to exit).
  for (int rank = 1; rank <= worker_count_; ++rank) {
    comm_.send(rank, kTagShutdown, {});
  }
  VIRA_INFO("scheduler") << "stopped";
}

void Scheduler::stop() { running_ = false; }

std::size_t Scheduler::free_workers() const {
  return free_count_.load(std::memory_order_relaxed);
}

std::size_t Scheduler::queued_requests() const {
  return pending_count_.load(std::memory_order_relaxed);
}

void Scheduler::poll_clients() {
  // Snapshot the link list, then poll each without blocking long. Requests
  // are internally re-keyed: different clients may reuse the same
  // client-side request id, so the scheduler assigns a globally unique id
  // for worker traffic and translates back at the client boundary.
  std::vector<std::shared_ptr<comm::ClientLink>> links;
  {
    std::lock_guard<std::mutex> lock(client_mutex_);
    links = clients_;
  }
  if (links.empty()) {
    // No one to poll. The idle wait happens in poll_workers' blocking
    // try_recv instead of a sleep here: a nudge() interrupts that wait, so
    // the first client's first frames are picked up promptly instead of
    // after the remainder of a full idle_poll slice.
    return;
  }

  bool any = false;
  for (std::size_t client = 0; client < links.size(); ++client) {
    if (!links[client] || links[client]->closed()) {
      continue;
    }
    auto msg = links[client]->recv(std::chrono::milliseconds(0));
    if (!msg) {
      continue;
    }
    any = true;
    switch (msg->tag) {
      case kTagSubmit: {
        auto request = CommandRequest::deserialize(msg->payload);
        VIRA_DEBUG("scheduler") << "client " << client << " submits request "
                                << request.request_id << " (" << request.command << ")";
        // Admission control: a client may only hold a bounded number of
        // queued (not yet dispatched) requests; beyond that the submission
        // is refused outright so pending_ cannot grow without limit.
        if (config_.max_queue_per_client > 0) {
          std::size_t depth = 0;
          for (const auto& queued : pending_) {
            depth += queued.client == client ? 1 : 0;
          }
          if (depth >= config_.max_queue_per_client) {
            total_rejected_.fetch_add(1);
            metrics().rejected.add();
            VIRA_WARN("scheduler")
                << "rejecting request " << request.request_id << " from client " << client
                << ": queue depth bound (" << config_.max_queue_per_client << ") reached";
            util::ByteBuffer payload;
            payload.write<std::uint64_t>(request.request_id);
            payload.write_string("admission control: client queue depth bound (" +
                                 std::to_string(config_.max_queue_per_client) + ") reached");
            send_to_client(client, kTagRejected, std::move(payload));
            break;
          }
        }
        PendingRequest entry;
        entry.client = client;
        entry.enqueued_at = util::clock_now();
        entry.queue_span = obs::Tracer::instance().start("sched.queue", request.request_id,
                                                         /*rank=*/0, request.parent_span);
        entry.request = std::move(request);
        pending_.push_back(std::move(entry));
        break;
      }
      case kTagCancel: {
        const auto client_request = msg->payload.read<std::uint64_t>();
        auto key = std::make_pair(client, client_request);
        auto it = by_client_.find(key);
        if (it != by_client_.end()) {
          auto group_it = groups_.find(it->second);
          if (group_it != groups_.end()) {
            // Workers are not interrupted mid-block; we simply stop
            // forwarding (paper Sec. 5: meaningless extractions "can be
            // discarded immediately" from the client's perspective).
            group_it->second.cancelled = true;
          }
        } else {
          for (auto qit = pending_.begin(); qit != pending_.end(); ++qit) {
            if (qit->client == client && qit->request.request_id == client_request) {
              // The request never dispatched, but the client still holds a
              // ResultStream on it: close it out with kTagError +
              // kTagComplete (mirroring the in-flight-cancel path in
              // recover_group) — erasing silently left wait() hanging
              // until its timeout.
              fail_pending(*qit, "request cancelled");
              pending_.erase(qit);
              break;
            }
          }
        }
        break;
      }
      case comm::kTagHello: {
        // Blocking fallback: the scheduler answers feature negotiation
        // itself (the event-loop frontend intercepts hellos before they
        // reach here). Grant nothing — the blocking backend's links speak
        // the plain framing — but always ack: a negotiated connect blocks
        // on the answer.
        auto hello = comm::WireHello::deserialize(msg->payload);
        comm::WireHello ack;
        ack.features = 0;
        ack.codec = util::Codec::kStore;
        if (hello.magic != comm::kWireMagic) {
          VIRA_WARN("scheduler") << "client " << client << " sent bad hello magic";
        }
        util::ByteBuffer payload;
        ack.serialize(payload);
        send_to_client(client, comm::kTagHelloAck, std::move(payload));
        break;
      }
      default:
        VIRA_WARN("scheduler") << "dropping unknown client tag " << msg->tag;
    }
  }
  // No sleep on an idle pass: poll_workers' first try_recv waits out the
  // poll slice (and a nudge interrupts it), so that is the loop's single
  // idle throttle. An extra sleep here just rations the tick rate — under
  // load it was the difference between draining the worker mailbox and
  // backlogging it by seconds.
  (void)any;
}

void Scheduler::poll_workers() {
  // Drain what is currently available without blocking long — bounded per
  // tick: a pool streaming partials faster than the poll slice otherwise
  // keeps this loop fed indefinitely and starves poll_clients, so submits
  // and cancels would sit unread for the whole duration of a stream.
  const int budget = 16 * (worker_count_ + 1);
  for (int processed = 0; processed < budget; ++processed) {
    // Only the first receive waits out the poll slice (the loop's idle
    // sleep); the rest take what is already queued and no more.
    auto msg = comm_.try_recv(comm::kAnySource, comm::kAnyTag,
                              processed == 0 ? config_.idle_poll : std::chrono::milliseconds(0));
    if (!msg) {
      return;
    }
    if (msg->source >= 1 && msg->source <= worker_count_) {
      last_seen_[msg->source] = util::clock_now();
    }
    switch (msg->tag) {
      case kTagStream:
        handle_stream(*msg, /*final=*/false);
        break;
      case kTagFinalResult:
        handle_stream(*msg, /*final=*/true);
        break;
      case kTagWorkerDone:
        handle_done(*msg);
        break;
      case kTagWorkerError:
        handle_error(*msg);
        break;
      case kTagProgressUp:
        handle_progress(*msg);
        break;
      case kTagHeartbeat:
        handle_heartbeat(*msg);
        break;
      case kTagNudge:
        // Self-sent wakeup from Scheduler::nudge(): its only job was to pop
        // the blocking try_recv above. Re-arm the dedup flag; poll_clients
        // runs next iteration of the scheduler loop.
        nudge_pending_.store(false, std::memory_order_release);
        break;
      case kTagDmsRequest:
      case kTagDmsNotify:
        if (data_server_) {
          service_dms_message(*data_server_, comm_, *msg, msg->tag == kTagDmsRequest);
        } else {
          VIRA_WARN("scheduler") << "DMS message but no data server attached";
        }
        break;
      default:
        VIRA_WARN("scheduler") << "dropping unknown worker tag " << msg->tag << " from "
                               << msg->source;
    }
  }
}

void Scheduler::handle_heartbeat(comm::Message& msg) {
  const auto beat = Heartbeat::deserialize(msg.payload);
  last_heartbeat_[msg.source] = util::clock_now();
  reported_request_[msg.source] = beat.current_request;
}

void Scheduler::handle_stream(comm::Message& msg, bool final) {
  // Peek the (internal) request id without consuming the payload.
  const std::size_t rewind = msg.payload.read_pos();
  FragmentHeader header = FragmentHeader::deserialize(msg.payload);
  msg.payload.seek(rewind);

  auto it = groups_.find(header.request_id);
  if (it == groups_.end()) {
    return;  // stale fragment of a finished/cancelled/abandoned request
  }
  Group& group = it->second;
  if (group.cancelled) {
    return;
  }
  // Exactly-once forwarding: a retried attempt recomputes fragments the
  // previous attempt already delivered, and a faulty transport may duplicate
  // messages outright. (partition, sequence) identifies a fragment across
  // attempts; the set travels with the request through retries.
  if (config_.fragment_dedup && !group.seen_fragments.insert(fragment_key(header)).second) {
    return;
  }
  if (group.first_packet_seconds < 0.0) {
    group.first_packet_seconds = group.total_seconds();
  }
  if (final) {
    group.result_bytes += msg.payload.size();
  } else {
    ++group.partial_packets;
  }
  // Translate the internal id back to the client's own request id: the
  // id is the first u64 of the serialized FragmentHeader.
  const std::uint64_t client_request = group.request.request_id;
  std::memcpy(msg.payload.data(), &client_request, sizeof(client_request));
  if (group.capture) {
    group.capture_bytes += msg.payload.size();
    if (group.capture_bytes > config_.result_cache.max_entry_bytes) {
      // Too big to ever admit; stop copying and free what accumulated.
      group.capture = false;
      group.captured.clear();
      group.captured.shrink_to_fit();
    } else {
      CachedResult::Fragment fragment;
      fragment.final = final;
      fragment.payload = msg.payload;  // copy; the original streams on
      group.captured.push_back(std::move(fragment));
    }
  }
  metrics().fragments.add();
  auto send_span = obs::Tracer::instance().start("link.send", client_request, /*rank=*/0,
                                                 group.span.context().span_id);
  if (send_span.active()) {
    send_span.arg("bytes", static_cast<std::int64_t>(msg.payload.size()));
    send_span.arg("partition", header.partition);
  }
  send_to_client(group.client, final ? kTagFinal : kTagPartial, std::move(msg.payload),
                 client_request, send_span.context().span_id);
}

void Scheduler::handle_done(comm::Message& msg) {
  auto report = WorkerReport::deserialize(msg.payload);
  auto it = groups_.find(report.request_id);
  if (it == groups_.end()) {
    // Straggler of an abandoned attempt (or a report that outlived its
    // group): the worker is idle again either way.
    VIRA_DEBUG("scheduler") << "done report for unknown request " << report.request_id
                            << " from rank " << report.rank;
    if (!dead_.count(report.rank)) {
      free_.insert(report.rank);
    }
    return;
  }
  Group& group = it->second;
  group.done_ranks.insert(report.rank);
  if (!report.success) {
    group.failed = true;
    if (group.error.empty()) {
      group.error = report.error;
    }
  }
  for (const auto& [phase, seconds] : report.phase_seconds) {
    group.phase_seconds[phase] += seconds;
  }
  if (!dead_.count(report.rank)) {
    free_.insert(report.rank);
  }
  if (--group.pending == 0) {
    finish_group(report.request_id);
  }
}

void Scheduler::handle_error(comm::Message& msg) {
  const auto request_id = msg.payload.read<std::uint64_t>();
  auto it = groups_.find(request_id);
  if (it != groups_.end()) {
    it->second.failed = true;
    it->second.error = msg.payload.read_string();
  }
}

void Scheduler::handle_progress(comm::Message& msg) {
  const auto request_id = msg.payload.read<std::uint64_t>();
  const double fraction = msg.payload.read<double>();
  auto it = groups_.find(request_id);
  if (it == groups_.end() || it->second.cancelled) {
    return;
  }
  util::ByteBuffer payload;
  payload.write<std::uint64_t>(it->second.request.request_id);
  payload.write<double>(fraction);
  send_to_client(it->second.client, kTagProgress, std::move(payload));
}

void Scheduler::check_liveness() {
  if (!config_.liveness) {
    return;
  }
  const auto now = util::clock_now();

  // (1) Rank death: nothing heard for death_timeout. Heartbeats flow every
  // few tens of milliseconds from a dedicated worker thread, so a silent
  // rank is dead (killed, wedged, or unreachable), not merely busy.
  for (int rank = 1; rank <= worker_count_; ++rank) {
    if (dead_.count(rank)) {
      continue;
    }
    if (now - last_seen_[rank] > config_.death_timeout) {
      dead_.insert(rank);
      free_.erase(rank);
      lost_workers_.fetch_add(1);
      metrics().lost_workers.add();
      VIRA_WARN("scheduler") << "worker rank " << rank << " declared dead (silent for "
                             << config_.death_timeout.count() << "ms); "
                             << (worker_count_ - dead_.size()) << " workers remain";
    }
  }

  // (2) Stale executions. A rank whose heartbeats name an internal id that
  // no longer exists is grinding on an abandoned attempt — its
  // kTagGroupAbort was lost in transit (lossy transports drop control
  // messages like any other). Without a re-send the rank never unblocks:
  // its heartbeats keep it "alive" forever, it never reports done, and the
  // pool is one worker short for good. Aborts are idempotent, so re-send
  // (rate-limited by idle_grace) until the rank moves on.
  for (const auto& [rank, executing] : reported_request_) {
    if (executing == 0 || dead_.count(rank) || groups_.count(executing) > 0) {
      continue;
    }
    auto& last_sent = last_stale_abort_[rank];
    if (now - last_sent < config_.idle_grace) {
      continue;
    }
    last_sent = now;
    util::ByteBuffer abort_payload;
    abort_payload.write<std::uint64_t>(executing);
    comm_.send(rank, kTagGroupAbort, std::move(abort_payload));
    VIRA_DEBUG("scheduler") << "re-sending abort for abandoned request " << executing
                            << " to rank " << rank;
  }

  // (2b) Pool reconciliation. Done reports are at-most-once on a lossy
  // transport: a worker whose kTagWorkerDone was dropped goes idle
  // (heartbeats name request 0) without ever being returned to the pool,
  // and no later message will free it. A rank that reports idle and is not
  // a member of any live group is certainly free; re-inserting is
  // idempotent.
  std::set<int> busy_ranks;
  for (const auto& [internal_id, group] : groups_) {
    for (const int rank : group.ranks) {
      if (!group.done_ranks.count(rank)) {
        busy_ranks.insert(rank);
      }
    }
  }
  for (const auto& [rank, executing] : reported_request_) {
    if (executing == 0 && !dead_.count(rank) && !busy_ranks.count(rank) &&
        !free_.count(rank)) {
      VIRA_DEBUG("scheduler") << "rank " << rank
                              << " reports idle with no live group; returning it to the pool";
      free_.insert(rank);
    }
  }

  // (3) Per-group health. A group is unrecoverable in place when a member
  // is dead, or when a member's recent heartbeats name a different request
  // (its execute order or its done report was lost in transit).
  std::vector<std::pair<std::uint64_t, std::string>> to_recover;
  for (auto& [internal_id, group] : groups_) {
    std::string reason;
    for (const int rank : group.ranks) {
      if (group.done_ranks.count(rank)) {
        continue;
      }
      if (dead_.count(rank)) {
        reason = "member rank " + std::to_string(rank) + " died";
        break;
      }
      const auto beat = last_heartbeat_.find(rank);
      if (beat != last_heartbeat_.end() &&
          beat->second > group.dispatched_at + config_.idle_grace &&
          reported_request_[rank] != internal_id) {
        reason = "member rank " + std::to_string(rank) + " is not executing the request";
        break;
      }
    }
    if (reason.empty() && config_.request_timeout.count() > 0 &&
        now - group.dispatched_at > config_.request_timeout) {
      reason = "attempt exceeded request_timeout";
    }
    if (!reason.empty()) {
      to_recover.emplace_back(internal_id, std::move(reason));
    }
  }
  for (auto& [internal_id, reason] : to_recover) {
    recover_group(internal_id, reason);
  }
}

void Scheduler::recover_group(std::uint64_t internal_id, const std::string& reason) {
  auto it = groups_.find(internal_id);
  if (it == groups_.end()) {
    return;
  }
  Group& group = it->second;
  VIRA_WARN("scheduler") << "abandoning attempt " << group.attempt + 1 << " of request "
                         << group.request.request_id << " (client " << group.client
                         << "): " << reason;

  // Unstick the survivors: an alive member may be blocked in a collective
  // on the lost one. The abort flag makes its next bounded wait throw
  // CommandAborted; its done report then arrives for an unknown request and
  // frees it. Members whose heartbeats already say they are NOT executing
  // this request (lost order / already finished) return to the pool now —
  // no done report is coming from them.
  for (const int rank : group.ranks) {
    if (group.done_ranks.count(rank) || dead_.count(rank)) {
      continue;
    }
    util::ByteBuffer abort_payload;
    abort_payload.write<std::uint64_t>(internal_id);
    comm_.send(rank, kTagGroupAbort, std::move(abort_payload));
    const auto beat = last_heartbeat_.find(rank);
    if (beat != last_heartbeat_.end() &&
        beat->second > group.dispatched_at + config_.idle_grace &&
        reported_request_[rank] != internal_id) {
      free_.insert(rank);
    }
  }

  by_client_.erase(std::make_pair(group.client, group.request.request_id));

  if (group.cancelled) {
    // The client walked away from this request already; don't spend a
    // retry on it, just close it out — kTagError first so the failed
    // completion is never silent (same contract as every other failure
    // path; the DST terminal oracle checks it).
    group.failed = true;
    group.error = "request cancelled; " + reason;
    CommandStats stats;
    stats.request_id = group.request.request_id;
    stats.success = false;
    stats.error = group.error;
    stats.total_runtime = group.total_seconds();
    stats.workers = group.width;
    stats.requested_workers = group.requested_workers > 0 ? group.requested_workers : group.width;
    stats.retries = static_cast<std::uint32_t>(group.attempt);
    util::ByteBuffer error_payload;
    error_payload.write<std::uint64_t>(group.request.request_id);
    error_payload.write_string(group.error);
    send_to_client(group.client, kTagError, std::move(error_payload));
    util::ByteBuffer payload;
    stats.serialize(payload);
    send_to_client(group.client, kTagComplete, std::move(payload));
    groups_.erase(it);
    return;
  }

  if (group.attempt >= config_.max_retries) {
    group.failed = true;
    group.error = "request failed after " + std::to_string(group.attempt + 1) +
                  " attempts: " + reason;
    // finish_group needs pending bookkeeping ignored; report directly.
    CommandStats stats;
    stats.request_id = group.request.request_id;
    stats.success = false;
    stats.error = group.error;
    stats.total_runtime = group.total_seconds();
    stats.latency = group.first_packet_seconds >= 0.0 ? group.first_packet_seconds
                                                      : stats.total_runtime;
    stats.partial_packets = group.partial_packets;
    stats.result_bytes = group.result_bytes;
    stats.workers = group.width;
    stats.requested_workers = group.requested_workers > 0 ? group.requested_workers : group.width;
    stats.retries = static_cast<std::uint32_t>(group.attempt);
    stats.phase_seconds = group.phase_seconds;
    util::ByteBuffer error_payload;
    error_payload.write<std::uint64_t>(group.request.request_id);
    error_payload.write_string(group.error);
    send_to_client(group.client, kTagError, std::move(error_payload));
    util::ByteBuffer payload;
    stats.serialize(payload);
    send_to_client(group.client, kTagComplete, std::move(payload));
    groups_.erase(it);
    return;
  }

  total_retries_.fetch_add(1);
  metrics().retries.add();

  PendingRequest retry;
  retry.client = group.client;
  retry.attempt = group.attempt + 1;
  // The group width is pinned across retries: partition k of a narrower or
  // wider group would cover a different share of the data and break the
  // fragment identity the dedup set relies on.
  retry.width = group.width;
  retry.requested_workers = group.requested_workers;
  retry.enqueued_at = util::clock_now();
  retry.queue_span = obs::Tracer::instance().start("sched.queue", group.request.request_id,
                                                   /*rank=*/0, group.request.parent_span);
  retry.not_before =
      util::clock_now() + config_.retry_backoff * (1 << std::min(group.attempt, 16));
  retry.elapsed_before = group.total_seconds();
  retry.first_packet_seconds = group.first_packet_seconds;
  retry.partial_packets = group.partial_packets;
  retry.result_bytes = group.result_bytes;
  retry.phase_seconds = std::move(group.phase_seconds);
  retry.seen_fragments = std::move(group.seen_fragments);
  retry.request = std::move(group.request);

  // Tell the client the request is running degraded (attempt count so far).
  util::ByteBuffer degraded;
  degraded.write<std::uint64_t>(retry.request.request_id);
  degraded.write<std::uint32_t>(static_cast<std::uint32_t>(retry.attempt));
  send_to_client(retry.client, kTagDegraded, std::move(degraded));

  groups_.erase(it);
  // Head of the queue: a wounded request should not wait behind new work.
  pending_.push_front(std::move(retry));
}

void Scheduler::finish_group(std::uint64_t internal_id) {
  auto it = groups_.find(internal_id);
  Group& group = it->second;

  CommandStats stats;
  stats.request_id = group.request.request_id;
  stats.success = !group.failed;
  stats.error = group.error;
  stats.total_runtime = group.total_seconds();
  stats.latency = group.first_packet_seconds >= 0.0 ? group.first_packet_seconds
                                                    : stats.total_runtime;
  stats.partial_packets = group.partial_packets;
  stats.result_bytes = group.result_bytes;
  stats.workers = static_cast<int>(group.ranks.size());
  stats.requested_workers =
      group.requested_workers > 0 ? group.requested_workers : stats.workers;
  stats.retries = static_cast<std::uint32_t>(group.attempt);
  stats.phase_seconds = group.phase_seconds;
  if (result_cache_) {
    stats.data_version = group.cache_version;
  }

  // Admission: only a fully successful, non-degraded, non-cancelled
  // first-attempt stream is memoized, and only while the dataset version
  // it was keyed under is still current. After a mid-flight version bump
  // the entry's key is unreachable anyway; dropping it beats storing it.
  if (result_cache_ && group.capture && !group.failed && !group.cancelled &&
      !group.reaped && group.attempt == 0 &&
      group.cache_version == current_data_version()) {
    CachedResult entry;
    entry.key = group.cache_key;
    entry.data_version = group.cache_version;
    entry.workers = stats.workers;
    entry.requested_workers = stats.requested_workers;
    entry.partial_packets = group.partial_packets;
    entry.result_bytes = group.result_bytes;
    entry.compute_seconds = stats.total_runtime;
    entry.fragments = std::move(group.captured);
    result_cache_->insert(std::move(entry));
  }

  if (group.failed) {
    util::ByteBuffer error_payload;
    error_payload.write<std::uint64_t>(group.request.request_id);
    error_payload.write_string(group.error);
    send_to_client(group.client, kTagError, std::move(error_payload),
                   group.request.request_id, group.span.context().span_id);
  }
  util::ByteBuffer payload;
  stats.serialize(payload);
  send_to_client(group.client, kTagComplete, std::move(payload),
                 group.request.request_id, group.span.context().span_id);

  metrics().requests.add();
  metrics().runtime.observe(stats.total_runtime);
  metrics().latency.observe(stats.latency);
  if (stats.degraded()) {
    metrics().degraded.add();
  }
  if (group.failed) {
    metrics().failed.add();
  }

  VIRA_DEBUG("scheduler") << "request " << group.request.request_id << " (client "
                          << group.client << ") finished in " << stats.total_runtime
                          << "s (latency " << stats.latency << "s, retries "
                          << stats.retries << ")";
  by_client_.erase(std::make_pair(group.client, group.request.request_id));
  groups_.erase(it);
}

void Scheduler::fail_pending(PendingRequest& entry, const std::string& reason) {
  VIRA_WARN("scheduler") << "request " << entry.request.request_id << " (client "
                         << entry.client << ") failed: " << reason;
  CommandStats stats;
  stats.request_id = entry.request.request_id;
  stats.success = false;
  stats.error = reason;
  stats.total_runtime = entry.elapsed_before;
  stats.latency =
      entry.first_packet_seconds >= 0.0 ? entry.first_packet_seconds : entry.elapsed_before;
  stats.partial_packets = entry.partial_packets;
  stats.result_bytes = entry.result_bytes;
  stats.workers = entry.width;
  stats.requested_workers = entry.requested_workers > 0 ? entry.requested_workers : entry.width;
  stats.retries = static_cast<std::uint32_t>(entry.attempt);
  stats.phase_seconds = entry.phase_seconds;
  util::ByteBuffer error_payload;
  error_payload.write<std::uint64_t>(entry.request.request_id);
  error_payload.write_string(reason);
  send_to_client(entry.client, kTagError, std::move(error_payload));
  util::ByteBuffer payload;
  stats.serialize(payload);
  send_to_client(entry.client, kTagComplete, std::move(payload));
}

bool Scheduler::client_link_closed(std::size_t client) const {
  std::lock_guard<std::mutex> lock(client_mutex_);
  if (client >= clients_.size()) {
    return true;
  }
  const auto& link = clients_[client];
  return !link || link->closed();
}

int Scheduler::requested_width(const PendingRequest& entry, int alive) const {
  int requested = static_cast<int>(entry.request.params.get_int("workers", 0));
  if (requested <= 0) {
    requested = alive;  // the seed's derived default: the whole pool
  }
  return requested;
}

/// Queue-wait accounting at the moment an entry leaves pending_ for a work
/// group: histogram + per-client gauge + the sched.queue span closes.
void Scheduler::note_dispatch(PendingRequest& entry) {
  const double waited =
      std::chrono::duration<double>(util::clock_now() - entry.enqueued_at).count();
  metrics().wait.observe(waited);
  client_wait_gauge(entry.client).set(static_cast<std::int64_t>(waited * 1000.0));
  entry.queue_span.end();
}

/// Drops queued entries and abandons in-flight groups whose client link has
/// closed: nobody is left to read the results, so computing them only
/// steals workers from live clients. In-flight members get a group abort
/// (idempotent; their done reports free them through handle_done), and the
/// eventual finish_group sends fall into send_to_client's closed-link drop.
void Scheduler::reap_closed_clients() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (client_link_closed(it->client)) {
      VIRA_WARN("scheduler") << "reaping queued request " << it->request.request_id
                             << ": client " << it->client << " link closed";
      total_reaped_.fetch_add(1);
      metrics().reaped.add();
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [internal_id, group] : groups_) {
    if (group.reaped || group.cancelled || !client_link_closed(group.client)) {
      continue;
    }
    VIRA_WARN("scheduler") << "reaping in-flight request " << group.request.request_id
                           << ": client " << group.client << " link closed";
    group.cancelled = true;
    group.reaped = true;
    total_reaped_.fetch_add(1);
    metrics().reaped.add();
    for (const int rank : group.ranks) {
      if (group.done_ranks.count(rank) || dead_.count(rank)) {
        continue;
      }
      util::ByteBuffer abort_payload;
      abort_payload.write<std::uint64_t>(internal_id);
      comm_.send(rank, kTagGroupAbort, std::move(abort_payload));
    }
  }
}

std::uint64_t Scheduler::current_data_version() const {
  return data_server_ ? data_server_->names().data_version() : 1;
}

/// Keys every unchecked attempt-0 entry once and serves cache hits without
/// forming a work group. Retries are exempt twice over: their fragment
/// stream is already half-delivered (replaying from zero would duplicate),
/// and their pinned width may differ from the recorded run.
void Scheduler::serve_cache_hits() {
  if (!result_cache_) {
    return;
  }
  const std::uint64_t version = current_data_version();
  if (last_data_version_ != 0 && version != last_data_version_) {
    // Dataset changed: entries under older versions are unreachable
    // through the keys already; reclaim their bytes eagerly.
    result_cache_->invalidate_all();
    VIRA_INFO("scheduler") << "dataset version " << version
                           << ": result cache invalidated";
  }
  last_data_version_ = version;

  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingRequest& entry = *it;
    if (entry.attempt != 0) {
      ++it;
      continue;
    }
    if (!entry.cache_checked) {
      entry.cache_checked = true;
      entry.cache_key =
          ResultCache::make_key(entry.request.command, entry.request.params, version);
      entry.cache_version = version;
    }
    // Re-probe queued entries every pass, not just on arrival: when many
    // clients submit the same extraction at once (the paper's premise),
    // the duplicates are all queued before the first completion lands in
    // the cache. A once-per-entry lookup would compute every one of them;
    // re-probing turns everything still queued at that point into replays.
    auto hit = result_cache_->lookup(entry.cache_key);
    if (!hit) {
      ++it;
      continue;
    }
    note_dispatch(entry);
    replay_cached(entry, *hit);
    it = pending_.erase(it);
  }
}

/// Streams a memoized result back: the recorded kTagPartial/kTagFinal
/// payloads verbatim (re-addressed to this client's request id), then a
/// synthesized kTagComplete with cache_hit set. Mirrors the normal
/// delivery path's metrics and span tree (a synthetic sched.request span
/// with a result_cache.lookup child) so traces and dashboards see one
/// consistent shape either way.
void Scheduler::replay_cached(PendingRequest& entry, const CachedResult& hit) {
  cache_hits_.fetch_add(1);
  auto span = obs::Tracer::instance().start("sched.request", entry.request.request_id,
                                            /*rank=*/0, entry.request.parent_span);
  if (span.active()) {
    span.arg("cache_hit", 1);
    span.arg("workers", static_cast<std::int64_t>(hit.workers));
  }
  {
    auto lookup = obs::Tracer::instance().start("result_cache.lookup",
                                                entry.request.request_id, /*rank=*/0,
                                                span.context().span_id);
    if (lookup.active()) {
      lookup.arg("hit", 1);
    }
  }

  const std::uint64_t client_request = entry.request.request_id;
  for (const auto& fragment : hit.fragments) {
    util::ByteBuffer payload = fragment.payload;
    // Re-address the recorded frame: the client's request id is the first
    // u64 of the serialized FragmentHeader (same rewrite handle_stream
    // uses on live traffic).
    std::memcpy(payload.data(), &client_request, sizeof(client_request));
    metrics().fragments.add();
    auto send_span = obs::Tracer::instance().start("link.send", client_request, /*rank=*/0,
                                                   span.context().span_id);
    if (send_span.active()) {
      send_span.arg("bytes", static_cast<std::int64_t>(payload.size()));
    }
    send_to_client(entry.client, fragment.final ? kTagFinal : kTagPartial,
                   std::move(payload), client_request, send_span.context().span_id);
  }

  CommandStats stats;
  stats.request_id = client_request;
  stats.success = true;
  const double waited =
      std::chrono::duration<double>(util::clock_now() - entry.enqueued_at).count();
  stats.total_runtime = waited;
  stats.latency = waited;
  stats.partial_packets = hit.partial_packets;
  stats.result_bytes = hit.result_bytes;
  stats.workers = hit.workers;
  stats.requested_workers = hit.requested_workers;
  stats.retries = 0;
  stats.cache_hit = true;
  stats.data_version = hit.data_version;
  util::ByteBuffer payload;
  stats.serialize(payload);
  send_to_client(entry.client, kTagComplete, std::move(payload));

  metrics().requests.add();
  metrics().runtime.observe(stats.total_runtime);
  metrics().latency.observe(stats.latency);
  VIRA_DEBUG("scheduler") << "request " << client_request << " (client " << entry.client
                          << ") served from result cache (" << hit.fragments.size()
                          << " fragments, " << hit.result_bytes << " bytes)";
}

void Scheduler::dispatch_pending() {
  reap_closed_clients();
  serve_cache_hits();
  if (config_.policy == SchedPolicy::kFifo) {
    dispatch_fifo();
  } else {
    dispatch_fair_share();
  }
  metrics().queue_depth.set(static_cast<std::int64_t>(pending_.size()));
}

/// The seed's strict-arrival-order loop, kept reachable as
/// SchedPolicy::kFifo (the bench baseline and the conservative fallback).
void Scheduler::dispatch_fifo() {
  while (!pending_.empty()) {
    PendingRequest& head = pending_.front();
    if (head.not_before > util::clock_now()) {
      return;  // backoff gate; retries sit at the head, so wait it out
    }
    const int alive = worker_count_ - static_cast<int>(dead_.size());
    const int requested = head.width > 0 ? head.requested_workers : requested_width(head, alive);
    int wanted = head.width;
    if (wanted <= 0) {
      wanted = requested > alive ? alive : requested;
    }
    if (wanted > alive || alive == 0) {
      // A retry's width is pinned (see recover_group); if the pool shrank
      // below it the request can never run faithfully again.
      fail_pending(head, "not enough workers alive (" + std::to_string(alive) + " of " +
                             std::to_string(wanted) + " required)");
      pending_.pop_front();
      continue;
    }
    if (static_cast<int>(free_.size()) < wanted) {
      return;  // wait for workers to free up
    }
    PendingRequest entry = std::move(pending_.front());
    pending_.pop_front();
    entry.width = wanted;
    entry.requested_workers = requested;
    note_dispatch(entry);
    start_group(std::move(entry));
  }
}

/// Per-client deficit-round-robin with molding, backfilling, and aging.
///
/// Each pass considers only the oldest queued entry of every client (one
/// client's own requests never reorder), molds derived widths to
/// ceil(alive / active clients) so K clients share the pool, and dispatches
/// the fitting candidate whose client has received the least width-weighted
/// service. Dispatching past a ready-but-blocked head counts against the
/// head's aging budget; once `max_head_bypass` is exhausted backfilling
/// pauses and the head gets the next workers that free up — the
/// no-starvation bound the DST oracle checks.
void Scheduler::dispatch_fair_share() {
  while (!pending_.empty()) {
    const auto now = util::clock_now();
    const int alive = worker_count_ - static_cast<int>(dead_.size());

    // Entries that can never run again fail now, wherever they queue:
    // a pinned retry width above the shrunken pool waits for nothing.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (alive == 0 || it->width > alive) {
        fail_pending(*it, "not enough workers alive (" + std::to_string(alive) + " of " +
                              std::to_string(it->width > 0 ? it->width : 1) + " required)");
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    if (pending_.empty() || alive == 0) {
      return;
    }

    // Clients with outstanding work (queued or running) define the fair
    // share derived widths are molded to. Ceiling keeps the split
    // work-conserving when the pool does not divide evenly.
    std::set<std::size_t> active_clients;
    for (const auto& entry : pending_) {
      active_clients.insert(entry.client);
    }
    for (const auto& [internal_id, group] : groups_) {
      active_clients.insert(group.client);
    }
    const int client_count = static_cast<int>(active_clients.size());
    const int share = std::max(1, (alive + client_count - 1) / client_count);

    // Deficit bookkeeping: drop departed clients; a (re)joining client
    // starts level with the least-served active client, not at zero, so
    // accumulated history cannot starve long-running peers.
    std::uint64_t floor_service = ~0ull;
    for (auto it = client_service_.begin(); it != client_service_.end();) {
      if (!active_clients.count(it->first)) {
        it = client_service_.erase(it);
      } else {
        floor_service = std::min(floor_service, it->second);
        ++it;
      }
    }
    if (floor_service == ~0ull) {
      floor_service = 0;
    }
    for (const std::size_t client : active_clients) {
      client_service_.emplace(client, floor_service);
    }

    const auto molded_width = [&](const PendingRequest& entry) {
      if (entry.width > 0) {
        return entry.width;  // pinned retry width: never remolded
      }
      return std::max(1, std::min(requested_width(entry, alive), share));
    };

    // Candidates: each client's first queued entry past its backoff gate.
    std::map<std::size_t, std::size_t> first_of_client;  // client -> index
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      first_of_client.emplace(pending_[i].client, i);
    }

    PendingRequest& head = pending_.front();
    const bool head_ready = head.not_before <= now;
    const bool head_aged = head_ready && head.bypassed >= config_.max_head_bypass;

    std::size_t chosen = pending_.size();
    std::uint64_t chosen_service = 0;
    for (const auto& [client, index] : first_of_client) {
      if (head_aged && index != 0) {
        continue;  // aged head: strict priority, no further bypassing
      }
      PendingRequest& entry = pending_[index];
      if (entry.not_before > now) {
        continue;
      }
      if (molded_width(entry) > static_cast<int>(free_.size())) {
        continue;
      }
      const std::uint64_t service = client_service_[client];
      if (chosen == pending_.size() || service < chosen_service ||
          (service == chosen_service && index < chosen)) {
        chosen = index;
        chosen_service = service;
      }
    }
    if (chosen == pending_.size()) {
      return;  // nothing fits right now; wait for workers to free up
    }

    if (chosen != 0 && head_ready) {
      // A backfill jumped the ready head; charge its aging budget.
      ++head.bypassed;
      total_backfills_.fetch_add(1);
      metrics().backfills.add();
      int seen = max_bypass_observed_.load();
      while (head.bypassed > seen &&
             !max_bypass_observed_.compare_exchange_weak(seen, head.bypassed)) {
      }
    }

    PendingRequest entry = std::move(pending_[chosen]);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(chosen));
    if (entry.width <= 0) {
      const int requested = requested_width(entry, alive);
      const int width = std::max(1, std::min(requested, share));
      entry.requested_workers = requested;
      entry.width = width;
      if (width < requested) {
        metrics().molded.add();
      }
    }
    client_service_[entry.client] += static_cast<std::uint64_t>(entry.width);
    note_dispatch(entry);
    start_group(std::move(entry));
  }
}

void Scheduler::start_group(PendingRequest entry) {
  const std::uint64_t internal_id = next_internal_id_++;

  Group group;
  group.client = entry.client;
  group.width = entry.width;
  group.requested_workers = entry.requested_workers;
  group.attempt = entry.attempt;
  group.elapsed_before = entry.elapsed_before;
  group.first_packet_seconds = entry.first_packet_seconds;
  group.partial_packets = entry.partial_packets;
  group.result_bytes = entry.result_bytes;
  group.phase_seconds = std::move(entry.phase_seconds);
  group.seen_fragments = std::move(entry.seen_fragments);
  group.cache_key = std::move(entry.cache_key);
  group.cache_version = entry.cache_version;
  // Capture for memoization: first attempt only (a retry's stream is
  // already half-delivered) and only with dedup on (duplicates in the
  // recording would replay as duplicates).
  group.capture = result_cache_ != nullptr && entry.attempt == 0 &&
                  config_.fragment_dedup && !group.cache_key.empty();
  group.request = std::move(entry.request);
  for (auto it = free_.begin();
       it != free_.end() && static_cast<int>(group.ranks.size()) < entry.width;) {
    group.ranks.push_back(*it);
    it = free_.erase(it);
  }
  group.master = group.ranks.front();
  group.pending = static_cast<int>(group.ranks.size());
  group.timer.restart();
  group.dispatched_at = util::clock_now();

  // One span per attempt, parented under the client's submit span; its id
  // travels in the execute order so every worker span stitches under it.
  group.span = obs::Tracer::instance().start("sched.request", group.request.request_id,
                                             /*rank=*/0, group.request.parent_span);
  if (group.span.active()) {
    group.span.arg("attempt", group.attempt + 1);
    group.span.arg("workers", static_cast<std::int64_t>(group.ranks.size()));
    group.span.arg("requested_workers", static_cast<std::int64_t>(group.requested_workers));
  }
  if (result_cache_ && group.attempt == 0) {
    // The (missed) lookup happened in serve_cache_hits before any
    // sched.request span existed; record it here under the attempt's span
    // so the trace shows the decision point (check_trace.py enforces the
    // result_cache.lookup → sched.request nesting).
    auto lookup = obs::Tracer::instance().start("result_cache.lookup",
                                                group.request.request_id, /*rank=*/0,
                                                group.span.context().span_id);
    if (lookup.active()) {
      lookup.arg("hit", 0);
    }
  }

  ExecuteOrder order;
  order.request_id = internal_id;  // workers talk in internal ids
  order.command = group.request.command;
  order.params = group.request.params;
  order.group_ranks.assign(group.ranks.begin(), group.ranks.end());
  order.master_rank = group.master;
  order.parent_span = group.span.context().span_id;
  order.trace_request = group.request.request_id;

  VIRA_DEBUG("scheduler") << "request " << group.request.request_id << " (client "
                          << group.client << ") -> group of " << group.ranks.size()
                          << " workers (master " << group.master << ", attempt "
                          << group.attempt + 1 << ")";

  for (const int rank : group.ranks) {
    util::ByteBuffer payload;
    order.serialize(payload);
    comm_.send(rank, kTagExecute, std::move(payload));
  }
  by_client_[std::make_pair(group.client, group.request.request_id)] = internal_id;
  groups_.emplace(internal_id, std::move(group));
}

}  // namespace vira::core
