#include "core/scheduler.hpp"

#include <thread>

#include "core/remote_server_api.hpp"

#include "util/log.hpp"

namespace vira::core {

namespace {
constexpr auto kPollSlice = std::chrono::milliseconds(2);
}

Scheduler::Scheduler(std::shared_ptr<comm::Transport> transport, int worker_count)
    : comm_(std::move(transport), 0), worker_count_(worker_count) {
  for (int rank = 1; rank <= worker_count_; ++rank) {
    free_.insert(rank);
  }
}

void Scheduler::attach_client(std::shared_ptr<comm::ClientLink> link) {
  std::lock_guard<std::mutex> lock(client_mutex_);
  clients_.push_back(std::move(link));
}

std::size_t Scheduler::client_count() const {
  std::lock_guard<std::mutex> lock(client_mutex_);
  std::size_t live = 0;
  for (const auto& client : clients_) {
    if (client && !client->closed()) {
      ++live;
    }
  }
  return live;
}

void Scheduler::send_to_client(std::size_t client, int tag, util::ByteBuffer payload) {
  std::shared_ptr<comm::ClientLink> link;
  {
    std::lock_guard<std::mutex> lock(client_mutex_);
    if (client < clients_.size()) {
      link = clients_[client];
    }
  }
  if (link && !link->closed()) {
    comm::Message msg;
    msg.source = 0;
    msg.tag = tag;
    msg.payload = std::move(payload);
    link->send(std::move(msg));
  }
}

void Scheduler::run() {
  running_ = true;
  VIRA_INFO("scheduler") << "serving " << worker_count_ << " workers";
  while (running_) {
    poll_clients();
    poll_workers();
    dispatch_pending();
  }
  // Orderly worker shutdown.
  for (int rank = 1; rank <= worker_count_; ++rank) {
    comm_.send(rank, kTagShutdown, {});
  }
  VIRA_INFO("scheduler") << "stopped";
}

void Scheduler::stop() { running_ = false; }

std::size_t Scheduler::free_workers() const { return free_.size(); }

std::size_t Scheduler::queued_requests() const { return pending_.size(); }

void Scheduler::poll_clients() {
  // Snapshot the link list, then poll each without blocking long. Requests
  // are internally re-keyed: different clients may reuse the same
  // client-side request id, so the scheduler assigns a globally unique id
  // for worker traffic and translates back at the client boundary.
  std::vector<std::shared_ptr<comm::ClientLink>> links;
  {
    std::lock_guard<std::mutex> lock(client_mutex_);
    links = clients_;
  }
  if (links.empty()) {
    std::this_thread::sleep_for(kPollSlice);
    return;
  }

  bool any = false;
  for (std::size_t client = 0; client < links.size(); ++client) {
    if (!links[client] || links[client]->closed()) {
      continue;
    }
    auto msg = links[client]->recv(std::chrono::milliseconds(0));
    if (!msg) {
      continue;
    }
    any = true;
    switch (msg->tag) {
      case kTagSubmit: {
        auto request = CommandRequest::deserialize(msg->payload);
        VIRA_DEBUG("scheduler") << "client " << client << " submits request "
                                << request.request_id << " (" << request.command << ")";
        pending_.emplace_back(std::move(request), client);
        break;
      }
      case kTagCancel: {
        const auto client_request = msg->payload.read<std::uint64_t>();
        auto key = std::make_pair(client, client_request);
        auto it = by_client_.find(key);
        if (it != by_client_.end()) {
          auto group_it = groups_.find(it->second);
          if (group_it != groups_.end()) {
            // Workers are not interrupted mid-block; we simply stop
            // forwarding (paper Sec. 5: meaningless extractions "can be
            // discarded immediately" from the client's perspective).
            group_it->second.cancelled = true;
          }
        } else {
          for (auto qit = pending_.begin(); qit != pending_.end(); ++qit) {
            if (qit->second == client && qit->first.request_id == client_request) {
              pending_.erase(qit);
              break;
            }
          }
        }
        break;
      }
      default:
        VIRA_WARN("scheduler") << "dropping unknown client tag " << msg->tag;
    }
  }
  if (!any) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void Scheduler::poll_workers() {
  // Drain everything currently available without blocking long.
  while (true) {
    auto msg = comm_.try_recv(comm::kAnySource, comm::kAnyTag, kPollSlice);
    if (!msg) {
      return;
    }
    switch (msg->tag) {
      case kTagStream:
        handle_stream(*msg, /*final=*/false);
        break;
      case kTagFinalResult:
        handle_stream(*msg, /*final=*/true);
        break;
      case kTagWorkerDone:
        handle_done(*msg);
        break;
      case kTagWorkerError:
        handle_error(*msg);
        break;
      case kTagProgressUp:
        handle_progress(*msg);
        break;
      case kTagDmsRequest:
      case kTagDmsNotify:
        if (data_server_) {
          service_dms_message(*data_server_, comm_, *msg, msg->tag == kTagDmsRequest);
        } else {
          VIRA_WARN("scheduler") << "DMS message but no data server attached";
        }
        break;
      default:
        VIRA_WARN("scheduler") << "dropping unknown worker tag " << msg->tag << " from "
                               << msg->source;
    }
  }
}

void Scheduler::handle_stream(comm::Message& msg, bool final) {
  // Peek the (internal) request id without consuming the payload.
  const std::size_t rewind = msg.payload.read_pos();
  FragmentHeader header = FragmentHeader::deserialize(msg.payload);
  msg.payload.seek(rewind);

  auto it = groups_.find(header.request_id);
  if (it == groups_.end()) {
    return;  // stale fragment of a finished/cancelled request
  }
  Group& group = it->second;
  if (group.cancelled) {
    return;
  }
  if (group.first_packet_seconds < 0.0) {
    group.first_packet_seconds = group.timer.seconds();
  }
  if (final) {
    group.result_bytes += msg.payload.size();
  } else {
    ++group.partial_packets;
  }
  // Translate the internal id back to the client's own request id: the
  // id is the first u64 of the serialized FragmentHeader.
  const std::uint64_t client_request = group.request.request_id;
  std::memcpy(msg.payload.data(), &client_request, sizeof(client_request));
  send_to_client(group.client, final ? kTagFinal : kTagPartial, std::move(msg.payload));
}

void Scheduler::handle_done(comm::Message& msg) {
  auto report = WorkerReport::deserialize(msg.payload);
  auto it = groups_.find(report.request_id);
  if (it == groups_.end()) {
    VIRA_WARN("scheduler") << "done report for unknown request " << report.request_id;
    free_.insert(report.rank);
    return;
  }
  Group& group = it->second;
  if (!report.success) {
    group.failed = true;
    if (group.error.empty()) {
      group.error = report.error;
    }
  }
  for (const auto& [phase, seconds] : report.phase_seconds) {
    group.phase_seconds[phase] += seconds;
  }
  free_.insert(report.rank);
  if (--group.pending == 0) {
    finish_group(report.request_id);
  }
}

void Scheduler::handle_error(comm::Message& msg) {
  const auto request_id = msg.payload.read<std::uint64_t>();
  auto it = groups_.find(request_id);
  if (it != groups_.end()) {
    it->second.failed = true;
    it->second.error = msg.payload.read_string();
  }
}

void Scheduler::handle_progress(comm::Message& msg) {
  const auto request_id = msg.payload.read<std::uint64_t>();
  const double fraction = msg.payload.read<double>();
  auto it = groups_.find(request_id);
  if (it == groups_.end() || it->second.cancelled) {
    return;
  }
  util::ByteBuffer payload;
  payload.write<std::uint64_t>(it->second.request.request_id);
  payload.write<double>(fraction);
  send_to_client(it->second.client, kTagProgress, std::move(payload));
}

void Scheduler::finish_group(std::uint64_t internal_id) {
  auto it = groups_.find(internal_id);
  Group& group = it->second;

  CommandStats stats;
  stats.request_id = group.request.request_id;
  stats.success = !group.failed;
  stats.error = group.error;
  stats.total_runtime = group.timer.seconds();
  stats.latency = group.first_packet_seconds >= 0.0 ? group.first_packet_seconds
                                                    : stats.total_runtime;
  stats.partial_packets = group.partial_packets;
  stats.result_bytes = group.result_bytes;
  stats.workers = static_cast<int>(group.ranks.size());
  stats.phase_seconds = group.phase_seconds;

  if (group.failed) {
    util::ByteBuffer error_payload;
    error_payload.write<std::uint64_t>(group.request.request_id);
    error_payload.write_string(group.error);
    send_to_client(group.client, kTagError, std::move(error_payload));
  }
  util::ByteBuffer payload;
  stats.serialize(payload);
  send_to_client(group.client, kTagComplete, std::move(payload));

  VIRA_DEBUG("scheduler") << "request " << group.request.request_id << " (client "
                          << group.client << ") finished in " << stats.total_runtime
                          << "s (latency " << stats.latency << "s)";
  by_client_.erase(std::make_pair(group.client, group.request.request_id));
  groups_.erase(it);
}

void Scheduler::dispatch_pending() {
  while (!pending_.empty()) {
    const auto& [next, client] = pending_.front();
    const int total = worker_count_;
    int wanted = static_cast<int>(next.params.get_int("workers", 0));
    if (wanted <= 0 || wanted > total) {
      wanted = total;
    }
    if (static_cast<int>(free_.size()) < wanted) {
      return;  // wait for workers to free up
    }
    auto [request, client_index] = std::move(pending_.front());
    pending_.pop_front();
    start_group(std::move(request), client_index);
  }
}

void Scheduler::start_group(CommandRequest request, std::size_t client) {
  const int total = worker_count_;
  int wanted = static_cast<int>(request.params.get_int("workers", 0));
  if (wanted <= 0 || wanted > total) {
    wanted = total;
  }

  const std::uint64_t internal_id = next_internal_id_++;

  Group group;
  group.request = request;
  group.client = client;
  for (auto it = free_.begin(); it != free_.end() && static_cast<int>(group.ranks.size()) < wanted;) {
    group.ranks.push_back(*it);
    it = free_.erase(it);
  }
  group.master = group.ranks.front();
  group.pending = static_cast<int>(group.ranks.size());
  group.timer.restart();

  ExecuteOrder order;
  order.request_id = internal_id;  // workers talk in internal ids
  order.command = request.command;
  order.params = request.params;
  order.group_ranks.assign(group.ranks.begin(), group.ranks.end());
  order.master_rank = group.master;

  VIRA_DEBUG("scheduler") << "request " << request.request_id << " (client " << client
                          << ") -> group of " << group.ranks.size() << " workers (master "
                          << group.master << ")";

  for (const int rank : group.ranks) {
    util::ByteBuffer payload;
    order.serialize(payload);
    comm_.send(rank, kTagExecute, std::move(payload));
  }
  by_client_[std::make_pair(client, request.request_id)] = internal_id;
  groups_.emplace(internal_id, std::move(group));
}

}  // namespace vira::core
