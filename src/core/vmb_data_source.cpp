#include "core/vmb_data_source.hpp"

#include <stdexcept>

#include "util/clock.hpp"

namespace vira::core {

const grid::DatasetReader& VmbDataSource::reader(const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = readers_.find(dir);
  if (it == readers_.end()) {
    it = readers_.emplace(dir, std::make_unique<grid::DatasetReader>(dir)).first;
  }
  return *it->second;
}

const grid::DatasetMeta& VmbDataSource::meta(const std::string& dir) const {
  return reader(dir).meta();
}

std::pair<int, int> VmbDataSource::step_block(const dms::DataItemName& name) {
  if (name.type != "block") {
    throw std::invalid_argument("VmbDataSource: unsupported item type '" + name.type + "'");
  }
  return {static_cast<int>(name.params.get_int("step", -1)),
          static_cast<int>(name.params.get_int("block", -1))};
}

void VmbDataSource::apply_delay(std::uint64_t bytes) const {
  if (delay_us_per_mb_ > 0.0) {
    const double us = delay_us_per_mb_ * static_cast<double>(bytes) / (1024.0 * 1024.0);
    util::clock_sleep(std::chrono::microseconds(static_cast<long>(us)));
  }
}

util::ByteBuffer VmbDataSource::load(const dms::DataItemName& name) {
  const auto [step, block] = step_block(name);
  auto bytes = reader(name.source).read_block_bytes(step, block);
  apply_delay(bytes.size());
  return bytes;
}

std::uint64_t VmbDataSource::item_bytes(const dms::DataItemName& name) const {
  const auto [step, block] = step_block(name);
  const auto& meta_ref = reader(name.source).meta();
  return meta_ref.steps.at(static_cast<std::size_t>(step))
      .blocks.at(static_cast<std::size_t>(block))
      .size;
}

std::uint64_t VmbDataSource::file_bytes(const dms::DataItemName& name) const {
  const auto [step, block] = step_block(name);
  (void)block;
  const auto& step_info = reader(name.source).meta().steps.at(static_cast<std::size_t>(step));
  std::uint64_t total = 0;
  for (const auto& info : step_info.blocks) {
    total += info.size;
  }
  return total;
}

std::string VmbDataSource::file_key(const dms::DataItemName& name) const {
  const auto [step, block] = step_block(name);
  (void)block;
  return name.source + "/" +
         reader(name.source).meta().steps.at(static_cast<std::size_t>(step)).filename;
}

std::vector<std::pair<dms::DataItemName, util::ByteBuffer>> VmbDataSource::load_file(
    const dms::DataItemName& name) {
  const auto [step, block] = step_block(name);
  (void)block;
  const auto& ds = reader(name.source);
  std::vector<std::pair<dms::DataItemName, util::ByteBuffer>> items;
  const auto& step_info = ds.meta().steps.at(static_cast<std::size_t>(step));
  items.reserve(step_info.blocks.size());
  for (std::size_t b = 0; b < step_info.blocks.size(); ++b) {
    auto bytes = ds.read_block_bytes(step, static_cast<int>(b));
    apply_delay(bytes.size());
    items.emplace_back(dms::block_item(name.source, step, static_cast<int>(b)),
                       std::move(bytes));
  }
  return items;
}

dms::SuccessorFn make_block_successor(dms::NameResolver& resolver, int blocks_per_step,
                                      int step_count, bool wrap_steps) {
  return [&resolver, blocks_per_step, step_count,
          wrap_steps](dms::ItemId id) -> std::optional<dms::ItemId> {
    const auto name = resolver.reverse(id);
    if (!name || name->type != "block") {
      return std::nullopt;
    }
    int step = static_cast<int>(name->params.get_int("step", 0));
    int block = static_cast<int>(name->params.get_int("block", 0)) + 1;
    if (block >= blocks_per_step) {
      if (!wrap_steps) {
        return std::nullopt;
      }
      block = 0;
      if (++step >= step_count) {
        return std::nullopt;
      }
    }
    return resolver.resolve(dms::block_item(name->source, step, block));
  };
}

}  // namespace vira::core
