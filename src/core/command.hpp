#pragma once

/// \file command.hpp
/// The command abstraction — Viracocha's uppermost layer (paper Sec. 3).
///
/// "Actually applied computing algorithms are merely implemented on the
/// uppermost layer. This design allows the reuse of the Viracocha framework
/// for purposes different from CFD post-processing by simply exchanging
/// this topmost layer."
///
/// A Command runs on every worker of a work group. The CommandContext gives
/// it everything the middle layer provides: its work-group communicator
/// slice, the node's data proxy, streaming, result collection and phase
/// accounting. Commands register in the CommandRegistry by name and are
/// instantiated per execution.

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "dms/data_proxy.hpp"
#include "grid/dataset_io.hpp"
#include "util/param_list.hpp"
#include "util/task_pool.hpp"
#include "util/timer.hpp"

namespace vira::core {

/// Canonical phase names used by every CFD command so Fig. 15's breakdown
/// is comparable across commands. Phases partition the command's wall time
/// (they always sum to it). Under the pipelined block executor "read" is
/// redefined as *stall-on-load* time — the stretch the command thread
/// actually waited for a block that was not ready yet; loads fully hidden
/// behind computation contribute zero read time, which is exactly the
/// overlap Fig. 15 measures.
inline constexpr const char* kPhaseCompute = "compute";
inline constexpr const char* kPhaseRead = "read";
inline constexpr const char* kPhaseSend = "send";

/// Thrown out of CommandContext collectives (and check_abort()) when the
/// scheduler has abandoned this execution attempt — typically because a
/// group member died and the request is being re-dispatched to a re-formed
/// group. Workers treat it like any command failure: report done
/// (unsuccessfully) and return to the pool.
class CommandAborted : public std::runtime_error {
 public:
  CommandAborted() : std::runtime_error("command aborted: work group abandoned") {}
};

class CommandContext {
 public:
  /// Hooks the runtime injects; commands never see the scheduler directly.
  struct Hooks {
    std::function<void(util::ByteBuffer fragment)> stream_partial;
    std::function<void(util::ByteBuffer result)> send_final;  ///< master only
    std::function<void(double fraction)> report_progress;
    std::function<const grid::DatasetMeta&(const std::string& dir)> dataset_meta;
    /// Polled inside blocking collectives (and by check_abort()): true once
    /// the scheduler has abandoned this attempt, so a worker stuck waiting
    /// on a dead peer unblocks instead of hanging forever.
    std::function<bool()> should_abort;
  };

  /// `pool` (optional) is the node's shared task pool for the pipelined
  /// block executor; commands run serially without one.
  CommandContext(std::uint64_t request_id, const util::ParamList& params,
                 comm::Communicator* comm, std::vector<int> group_ranks, int master_rank,
                 dms::DataProxy* proxy, Hooks hooks, util::TaskPool* pool = nullptr);

  /// --- identity -----------------------------------------------------------
  std::uint64_t request_id() const { return request_id_; }
  const util::ParamList& params() const { return params_; }

  /// --- work group ---------------------------------------------------------
  /// Rank of this worker within the group (0..group_size-1).
  int group_rank() const { return group_rank_; }
  int group_size() const { return static_cast<int>(group_ranks_.size()); }
  /// Global communicator ranks of the group.
  const std::vector<int>& group_ranks() const { return group_ranks_; }
  bool is_master() const;
  int master_rank() const { return master_rank_; }

  /// Raw communicator (global ranks!). Use the helpers below where they fit.
  comm::Communicator& comm();

  /// Gathers one buffer per group member at the master (returns empty
  /// elsewhere). Group-internal; tags are derived from the request id.
  std::vector<util::ByteBuffer> gather_at_master(util::ByteBuffer part);

  /// Group-wide barrier.
  void group_barrier();

  /// --- data ---------------------------------------------------------------
  dms::DataProxy& proxy();
  const grid::DatasetMeta& dataset_meta(const std::string& dir);
  /// The node's task pool for pipelined (overlapped) block loads; nullptr
  /// means this runtime runs commands strictly serially.
  util::TaskPool* task_pool() { return pool_; }

  /// --- results ------------------------------------------------------------
  /// Ships an intermediate fragment to the visualization client right now
  /// (paper Sec. 5). Any worker may stream.
  void stream_partial(util::ByteBuffer fragment);
  /// Ships the merged final result; only the master calls this.
  void send_final(util::ByteBuffer result);
  void report_progress(double fraction);

  /// --- failure handling -----------------------------------------------------
  /// True once the scheduler has abandoned this execution attempt.
  bool aborted() const;
  /// Throws CommandAborted if aborted(); long compute loops should call this
  /// between blocks so abandoned attempts stop burning the worker.
  void check_abort() const;

  /// --- accounting ----------------------------------------------------------
  util::PhaseTimer& phases() { return phases_; }

 private:
  /// recv that polls the abort hook between bounded waits.
  comm::Message recv_abortable(int source, int tag);
  std::uint64_t request_id_;
  const util::ParamList& params_;
  comm::Communicator* comm_;
  std::vector<int> group_ranks_;
  int group_rank_ = -1;
  int master_rank_;
  dms::DataProxy* proxy_;
  Hooks hooks_;
  util::TaskPool* pool_;
  util::PhaseTimer phases_;
};

class Command {
 public:
  virtual ~Command() = default;
  virtual std::string name() const = 0;
  /// Runs on every group member. Throwing aborts the command; the error is
  /// reported to the client.
  virtual void execute(CommandContext& context) = 0;
};

/// Name → factory registry (thread-safe).
class CommandRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Command>()>;

  void register_command(const std::string& name, Factory factory);
  std::unique_ptr<Command> create(const std::string& name) const;
  bool knows(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Registry pre-loaded with all built-in CFD commands (algo layer calls
  /// register_builtin_commands during Backend construction).
  static CommandRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

}  // namespace vira::core
