#pragma once

/// \file vmb_data_source.hpp
/// CFD manipulation methods: the DataSource over .vmb multi-block datasets.
///
/// This is the application-layer piece the DMS design deliberately leaves
/// open (paper Sec. 4): it knows the .vmb layout, so "block" items resolve
/// to single-block byte-range reads, and a collective load pulls a whole
/// time-step file. Dataset readers are cached per directory (the index is
/// read once).

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "dms/data_source.hpp"
#include "dms/name_service.hpp"
#include "dms/prefetcher.hpp"
#include "grid/dataset_io.hpp"

namespace vira::core {

class VmbDataSource final : public dms::DataSource {
 public:
  util::ByteBuffer load(const dms::DataItemName& name) override;
  std::uint64_t item_bytes(const dms::DataItemName& name) const override;
  std::uint64_t file_bytes(const dms::DataItemName& name) const override;
  std::string file_key(const dms::DataItemName& name) const override;
  std::vector<std::pair<dms::DataItemName, util::ByteBuffer>> load_file(
      const dms::DataItemName& name) override;

  /// Cached dataset metadata for `dir` (also used by commands via the
  /// context hook).
  const grid::DatasetMeta& meta(const std::string& dir) const;

  /// Optional artificial per-load delay (benchmarks use it to emulate a
  /// slower storage tier than the build machine's SSD).
  void set_read_delay_us_per_mb(double us) { delay_us_per_mb_ = us; }

 private:
  const grid::DatasetReader& reader(const std::string& dir) const;
  static std::pair<int, int> step_block(const dms::DataItemName& name);
  void apply_delay(std::uint64_t bytes) const;

  mutable std::mutex mutex_;
  mutable std::map<std::string, std::unique_ptr<grid::DatasetReader>> readers_;
  double delay_us_per_mb_ = 0.0;
};

/// The "next block" relation in file order (paper Sec. 4.2: "the simple
/// approach maintains the order of files a data set is stored"): block b →
/// block b+1 of the same time step; optionally wraps into the next step's
/// block 0 (useful for time-marching commands).
dms::SuccessorFn make_block_successor(dms::NameResolver& resolver, int blocks_per_step,
                                      int step_count, bool wrap_steps = false);

}  // namespace vira::core
